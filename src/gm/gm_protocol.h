// Classic Geometric Monitoring with Safe Zones and rebalancing
// (Sharfman et al. SIGMOD'06/TODS'07; safe-zone formulation of
// Lazerson et al. VLDB'15) — the baseline the paper compares against.
//
// Every site keeps its drift X_i inside the common convex safe zone
// Z = {x : φ(x) ≤ 0}; by convexity the average drift stays in Z, which
// implies the admissible-region guarantee. The safe zones are defined by
// the same safe functions FGM uses, "so as to fairly contrast the
// inherent communication costs of the GM and FGM protocols" (§5.1.2).
//
// On a local violation (φ(X_i) > 0) the coordinator rebalances
// progressively: it collects the violator's drift, then drifts of further
// randomly chosen sites, until the average of the collected drifts
// re-enters the zone; it then assigns that average back to the collected
// sites (preserving the drift sum). If even the global average violates,
// a full synchronization starts a new round: E absorbs the average drift
// and the new safe zone is shipped to every site.

#ifndef FGM_GM_GM_PROTOCOL_H_
#define FGM_GM_GM_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/sharded.h"
#include "net/network.h"
#include "net/protocol.h"
#include "net/transport.h"
#include "net/wire.h"
#include "query/query.h"
#include "safezone/safe_function.h"
#include "sim/event_network.h"
#include "util/rng.h"

namespace fgm {

struct GmConfig {
  /// How protocol messages travel (see FgmConfig::transport).
  TransportMode transport = TransportMode::kAuto;

  /// Simulated-network parameters (latency/drop only). GM's traffic is
  /// entirely request/response, so the event network's RPC discipline
  /// (charge every attempt, retransmit on loss) covers it; fault plans
  /// are rejected — GM has no crash/rejoin handshake.
  sim::NetSimConfig net;
  /// Disabling rebalancing makes every violation a full sync.
  bool rebalance = true;
  /// A partial rebalance is accepted only when the averaged drift has
  /// slack: φ(avg) ≤ margin·φ(0) (recall φ(0) < 0). With margin = 0 any
  /// point inside the zone is accepted, and freshly rebalanced sites that
  /// sit on the zone boundary re-violate immediately, cascading
  /// collections; a moderate margin collects a few more drifts per
  /// violation but ends the cascades.
  double slack_margin = 0.25;
  /// Seed for the random selection of rebalancing peers.
  uint64_t seed = 0x6d67;  // "gm"

  /// Structured event sink / metrics registry (obs/); non-owning,
  /// nullptr disables (see FgmConfig::trace).
  TraceSink* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
};

class GmProtocol : public MonitoringProtocol, public ShardedProtocol {
 public:
  GmProtocol(const ContinuousQuery* query, int num_sites, GmConfig config);

  std::string name() const override {
    return config_.rebalance ? "GM" : "GM-nosync";
  }
  void ProcessRecord(const StreamRecord& record) override;
  const RealVector& GlobalEstimate() const override { return estimate_; }
  double Estimate() const override { return query_value_; }
  ThresholdPair CurrentThresholds() const override { return thresholds_; }
  const TrafficStats& traffic() const override { return transport_->stats(); }
  int64_t rounds() const override { return full_syncs_; }
  void Finish() override {
    if (sim_ != nullptr) sim_->FinishRun();
  }
  const sim::SimNetStats* net_stats() const override {
    return sim_ != nullptr ? &sim_->net_stats() : nullptr;
  }

  int64_t violations() const { return violations_; }
  int64_t partial_rebalances() const { return partial_rebalances_; }

  /// The transport carrying this protocol's messages (testing hook).
  const Transport& transport() const { return *transport_; }

  // ShardedProtocol — one shard per site. Any single local violation
  // triggers coordinator interaction, so the speculation budget is 1.
  int shard_count() const override { return sites_k_; }
  int64_t SpeculationBudget() const override { return 1; }
  int64_t LocalProcess(const StreamRecord& record, double* value) override;
  int64_t LocalProcessBatch(const StreamRecord* base, const int64_t* positions,
                            int64_t n, int64_t budget, int32_t shard,
                            std::vector<LocalEvent>* events) override;
  void CommitRecords(int64_t count) override { (void)count; }
  bool CommitEvent(const LocalEvent& event) override;
  void SaveCheckpoint(int shard) override;
  void RestoreCheckpoint(int shard) override;
  bool SupportsSpeculation() const override { return sim_ == nullptr; }

 private:
  struct Site {
    std::unique_ptr<DriftEvaluator> evaluator;
    /// Raw updates since the coordinator last learned this drift, backing
    /// the verbatim (min(D, n) + 1 word) flush representation.
    RawUpdateLog log;
    int64_t updates_since_known = 0;
    /// Coordinator-side copy of the drift as last collected or assigned;
    /// a verbatim flush re-projects its raw updates on top of this, which
    /// reproduces the site's drift bit-exactly (GM drifts are cumulative,
    /// unlike FGM's flush-and-reset).
    RealVector known;
    /// Per-site sketch-delta scratch (safe for concurrent LocalProcess).
    std::vector<CellUpdate> scratch;
    /// Speculation checkpoint (`known` only moves at commits; not saved).
    std::unique_ptr<DriftEvaluator> saved_evaluator;
    RawUpdateLog::Mark saved_mark;
    int64_t saved_updates_since_known = 0;
    bool checkpoint_valid = false;
  };

  void StartRound();
  void HandleViolation(int violator);
  /// Collects `site`'s drift through the transport (dense or verbatim,
  /// whichever is cheaper) and returns the coordinator's reconstruction.
  const RealVector& CollectDrift(int site);

  const ContinuousQuery* query_;
  int sites_k_;
  GmConfig config_;
  std::unique_ptr<Transport> transport_;
  sim::EventNetwork* sim_ = nullptr;  // non-owning view into transport_
  Xoshiro256ss rng_;

  // Observability (non-owning; null when disabled).
  TraceSink* trace_ = nullptr;
  WallTimer* sketch_timer_ = nullptr;
  WallTimer* safe_fn_timer_ = nullptr;

  RealVector estimate_;
  double query_value_ = 0.0;
  ThresholdPair thresholds_{0.0, 0.0};
  std::unique_ptr<SafeFunction> safe_fn_;

  std::vector<Site> sites_;

  int64_t full_syncs_ = 0;
  int64_t violations_ = 0;
  int64_t partial_rebalances_ = 0;
};

/// Sets an evaluator's drift to an arbitrary vector (used when the
/// coordinator assigns rebalanced drifts).
void LoadDrift(DriftEvaluator* evaluator, const RealVector& value);

}  // namespace fgm

#endif  // FGM_GM_GM_PROTOCOL_H_
