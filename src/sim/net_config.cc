#include "sim/net_config.h"

#include <algorithm>
#include <cstdlib>

namespace fgm {
namespace sim {

namespace {

/// Splits `text` on `sep`, dropping empty pieces.
std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string::npos) end = text.size();
    if (end > start) out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool ParseNumber(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool ParseCount(const std::string& text, int64_t* out) {
  double value = 0.0;
  if (!ParseNumber(text, &value)) return false;
  *out = static_cast<int64_t>(value);
  return static_cast<double>(*out) == value && *out >= 0;
}

/// Parses "key=value" pairs from a comma-separated clause body.
bool ParsePairs(const std::string& body,
                std::vector<std::pair<std::string, std::string>>* out) {
  for (const std::string& pair : Split(body, ',')) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= pair.size()) {
      return false;
    }
    out->emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
  }
  return true;
}

}  // namespace

bool ParseLatencySpec(const std::string& spec, LatencySpec* out) {
  *out = LatencySpec{};
  if (spec.empty() || spec == "0") return true;
  const size_t colon = spec.find(':');
  if (colon == std::string::npos) return false;
  const std::string kind = spec.substr(0, colon);
  const std::string args = spec.substr(colon + 1);
  if (kind == "fixed") {
    out->kind = LatencySpec::Kind::kFixed;
    if (!ParseNumber(args, &out->a) || out->a < 0.0) return false;
    if (out->a == 0.0) out->kind = LatencySpec::Kind::kZero;
    return true;
  }
  if (kind == "uniform") {
    const size_t dash = args.find('-');
    if (dash == std::string::npos) return false;
    out->kind = LatencySpec::Kind::kUniform;
    return ParseNumber(args.substr(0, dash), &out->a) &&
           ParseNumber(args.substr(dash + 1), &out->b) && out->a >= 0.0 &&
           out->b >= out->a;
  }
  if (kind == "exp") {
    out->kind = LatencySpec::Kind::kExp;
    return ParseNumber(args, &out->a) && out->a > 0.0;
  }
  return false;
}

bool ParseFaultPlan(const std::string& plan, int sites,
                    std::vector<FaultTransition>* out) {
  out->clear();
  for (const std::string& clause : Split(plan, ';')) {
    const size_t colon = clause.find(':');
    if (colon == std::string::npos) return false;
    const std::string verb = clause.substr(0, colon);
    std::vector<std::pair<std::string, std::string>> pairs;
    if (!ParsePairs(clause.substr(colon + 1), &pairs)) return false;
    int64_t site = -1, start = -1, stop = -1;
    for (const auto& [key, value] : pairs) {
      int64_t* slot = nullptr;
      if (key == "site") {
        slot = &site;
      } else if ((verb == "crash" && key == "at") ||
                 (verb == "outage" && key == "from")) {
        slot = &start;
      } else if ((verb == "crash" && key == "rejoin") ||
                 (verb == "outage" && key == "to")) {
        slot = &stop;
      } else {
        return false;
      }
      if (!ParseCount(value, slot)) return false;
    }
    if (verb != "crash" && verb != "outage") return false;
    if (site < 0 || site >= sites || start < 1) return false;
    if (verb == "outage" && stop < 0) return false;  // outages must end
    if (stop >= 0 && stop <= start) return false;
    const char* reason = verb == "crash" ? "crash" : "outage";
    out->push_back({start, static_cast<int>(site), /*up=*/false, reason});
    if (stop >= 0) {
      out->push_back({stop, static_cast<int>(site), /*up=*/true, reason});
    }
  }
  std::stable_sort(out->begin(), out->end(),
                   [](const FaultTransition& a, const FaultTransition& b) {
                     return a.at < b.at;
                   });
  // Reject overlapping windows: per site, transitions must alternate
  // down/up starting from up.
  std::vector<char> down(static_cast<size_t>(sites), 0);
  for (const FaultTransition& t : *out) {
    if (down[static_cast<size_t>(t.site)] == (t.up ? 0 : 1)) return false;
    down[static_cast<size_t>(t.site)] = t.up ? 0 : 1;
  }
  return true;
}

}  // namespace sim
}  // namespace fgm
