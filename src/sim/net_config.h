// Configuration for the discrete-event network simulator (sim/).
//
// This header is standard-library-only so protocol configuration structs
// (FgmConfig, GmConfig, RunConfig) can embed a NetSimConfig without
// pulling the simulator implementation into their dependency cone.
//
// A NetSimConfig with an empty latency spec, zero drop and no fault plan
// leaves the simulator OFF: protocols use the synchronous transports of
// net/transport.h. `--net_latency 0` turns the event queue ON with zero
// delay, which must be (and is tested to be) bit-identical to the
// synchronous path — the simulator's null mode.

#ifndef FGM_SIM_NET_CONFIG_H_
#define FGM_SIM_NET_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fgm {
namespace sim {

/// Per-link delivery latency, in ticks (one tick = one stream record at
/// the protocol's ingestion loop).
struct LatencySpec {
  enum class Kind {
    kZero,     ///< instantaneous delivery ("" / "0")
    kFixed,    ///< constant ("fixed:T")
    kUniform,  ///< uniform integer in [a, b] ("uniform:A-B")
    kExp,      ///< exponential with mean a, truncated to integer ("exp:M")
  };
  Kind kind = Kind::kZero;
  double a = 0.0;
  double b = 0.0;
};

/// Parses "", "0", "fixed:T", "uniform:A-B" or "exp:M". Returns false on a
/// malformed spec (negative values, inverted ranges, unknown kind).
bool ParseLatencySpec(const std::string& spec, LatencySpec* out);

/// One scheduled link-state flip from the fault plan.
struct FaultTransition {
  int64_t at = 0;        ///< tick at which the flip takes effect
  int site = 0;
  bool up = false;       ///< false: site goes down, true: it comes back
  const char* reason = "crash";  ///< "crash" or "outage" (static string)
};

/// Parses a ';'-separated fault plan:
///   crash:site=S,at=T[,rejoin=T2]   — site S dies at tick T (volatile
///                                     subround state lost), optionally
///                                     rejoining at T2 > T
///   outage:site=S,from=A,to=B       — S's link is down on [A, B)
/// Both forms produce the same down-window semantics (the coordinator
/// cannot distinguish a dead site from an unreachable one and recovers
/// through the same resync handshake); the verb only labels the SiteDown
/// trace event. Returns false on malformed input, an out-of-range site, or
/// overlapping windows for one site. Transitions come back sorted by time.
bool ParseFaultPlan(const std::string& plan, int sites,
                    std::vector<FaultTransition>* out);

struct NetSimConfig {
  std::string latency;     ///< latency spec; "" disables the simulator
  double drop = 0.0;       ///< iid per-message loss probability in [0, 1)
  uint64_t seed = 0x5eedf00dULL;
  std::string fault_plan;  ///< see ParseFaultPlan; "" = no faults
  int64_t bandwidth = 0;       ///< link words per tick; 0 = unlimited
  int64_t reorder_window = 0;  ///< extra uniform delivery jitter in ticks
  int64_t retransmit_timeout = 64;  ///< ticks before an RPC resends
  int64_t silence_timeout = 256;    ///< ticks of counter silence before a
                                    ///< coordinator re-poll (lossy runs)
  int64_t dead_deadline = 4096;     ///< ticks a site may stay down before
                                    ///< the round reconfigures without it

  /// The simulator runs at all (any latency spec, loss, or faults).
  bool enabled() const {
    return !latency.empty() || drop > 0.0 || !fault_plan.empty();
  }
  /// Messages can be lost — arms the coordinator's silence timeout.
  bool lossy() const { return drop > 0.0 || !fault_plan.empty(); }
};

}  // namespace sim
}  // namespace fgm

#endif  // FGM_SIM_NET_CONFIG_H_
