// Discrete-event network simulator behind the Transport interface.
//
// EventNetwork carries the *real* serialized wire messages of
// net/wire.h over simulated links with per-link latency distributions,
// bandwidth caps, reordering jitter, probabilistic drop and scheduled
// endpoint outages — every message is encoded, size-checked against the
// charged word count, decoded and bit-verified exactly like the strict
// SerializingTransport, then delayed (and possibly lost) before
// delivery.
//
// Addressing is by general (from, to) endpoint ids, with one structural
// constraint: each EventNetwork instance models the links between one
// parent (endpoint id kParent) and its child endpoints, i.e. one star.
// The flat protocols run a single star whose children are the k sites;
// tree topologies (src/hier) route along tree edges by running their
// faulty tier's links through an EventNetwork whose child endpoints are
// that tier's aggregators. The Transport overrides are the flat
// two-endpoint fast path: Ship* = (kParent, site), Send*/PostCounter =
// (site, kParent); both resolve through the same (from, to) router.
//
// Two delivery disciplines:
//
//  * RPC (all Ship* / Send* calls): the caller blocks while the simulated
//    clock advances by the sampled delay; a lost message is detected by
//    timeout and retransmitted (each attempt is charged — retransmissions
//    are real words on the wire). This models the request/response
//    control plane (zone shipments, polls, flushes).
//  * Async (PostCounter): FGM's subround counter increments are
//    fire-and-forget datagrams. They sit in the event queue until their
//    due tick and are drained by the protocol at safe points
//    (PopCounter). Lost datagrams are NOT retransmitted — sites send
//    cumulative per-subround counters, so a later datagram or a
//    coordinator re-poll heals the gap.
//
// Determinism: one seeded generator drives drops, latencies and jitter in
// program order; the same config and stream reproduce a run bit-exactly.
// Fault-plan transitions take effect when the protocol drains them
// (PopFault) — i.e. at record granularity — never in the middle of an
// RPC, which keeps the site set stable across a multi-message exchange.
//
// Null mode (zero latency, no loss, no faults, no jitter/bandwidth):
// every datagram is due immediately, no randomness is consumed, and the
// MsgDelivered/MsgDropped trace events are suppressed, so traces and
// TrafficStats are bit-identical to the synchronous transports.

#ifndef FGM_SIM_EVENT_NETWORK_H_
#define FGM_SIM_EVENT_NETWORK_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "net/transport.h"
#include "sim/net_config.h"
#include "util/rng.h"

namespace fgm {

class TraceSink;
enum class TraceEventKind : int;

namespace sim {

/// The parent endpoint id in (from, to) addressing: the hub every child
/// endpoint of a star talks to (the coordinator in a flat run; the
/// tier's parent node in a tree topology).
inline constexpr int kParent = -1;

/// Aggregate counters for a simulated run. Message/word counts obey
/// conservation per direction: sent = delivered + dropped (the replay
/// checker re-verifies this from the trace).
struct SimNetStats {
  int64_t delivered_msgs = 0;
  int64_t delivered_words = 0;
  int64_t dropped_msgs = 0;
  int64_t dropped_words = 0;
  int64_t retransmitted_msgs = 0;  ///< RPC attempts after the first
  int64_t retransmitted_words = 0;
  int64_t stale_msgs = 0;   ///< counter datagrams from a closed subround
  int64_t timeouts = 0;     ///< coordinator silence-timeout re-polls
  int64_t resyncs = 0;      ///< completed crash/rejoin handshakes
  int64_t site_downs = 0;   ///< down transitions dispatched
  int64_t in_flight_words = 0;      ///< datagram words currently queued
  int64_t max_in_flight_words = 0;  ///< high-water mark of the above
  int64_t final_tick = 0;           ///< clock at FinishRun
};

/// Per-site attribution of the aggregate counters above. Maintained
/// alongside SimNetStats at zero extra randomness (pure bookkeeping on
/// the same events), so enabling consumers never perturbs a seeded run.
/// The health monitor (obs/health.h) derives per-site drop-rate,
/// latency and retransmission EWMAs from these cumulative counts.
struct SiteNetStats {
  int64_t delivered_msgs = 0;
  int64_t delivered_words = 0;
  int64_t dropped_msgs = 0;
  int64_t dropped_words = 0;
  int64_t retransmitted_msgs = 0;
  int64_t retransmitted_words = 0;
  int64_t latency_ticks = 0;    ///< summed post→delivery delays
  int64_t latency_samples = 0;  ///< deliveries contributing to the above
  int64_t downs = 0;            ///< down transitions for this site
};

/// A counter datagram handed to the protocol at its due tick.
struct CounterDelivery {
  int site = 0;       ///< child endpoint id of the carrying link
  int from = 0;       ///< sending endpoint (kParent = the hub)
  int to = kParent;   ///< receiving endpoint
  CounterMsg msg{0};
  int64_t round = 0;     ///< epoch the datagram was sent in
  int64_t subround = 0;
  int64_t due = 0;       ///< wire arrival tick
  int64_t posted = 0;    ///< tick the site posted it (span begin)
};

/// A fault-plan transition handed to the protocol at a safe point.
struct FaultNotice {
  int site = 0;
  bool up = false;
  const char* reason = "crash";
};

class EventNetwork final : public Transport {
 public:
  EventNetwork(int sites, const NetSimConfig& config);

  const char* name() const override { return "event-sim"; }
  void set_trace(TraceSink* trace) override;
  /// Registers the span sink and rebases it onto the simulated clock.
  /// Does NOT forward to the inner SimNetwork: the event network emits
  /// its own latency-stamped kRpc / kMsg / kDatagram spans per attempt,
  /// so the point spans SimNetwork would add per charge must stay off.
  void set_spans(SpanSink* spans) override;

  // Transport interface — blocking RPCs over the simulated links.
  SafeZoneMsg ShipSafeZone(int site, SafeZoneMsg msg) override;
  CheapZoneMsg ShipCheapZone(int site, CheapZoneMsg msg) override;
  QuantumMsg ShipQuantum(int site, QuantumMsg msg) override;
  LambdaMsg ShipLambda(int site, LambdaMsg msg) override;
  ControlMsg ShipControl(int site, ControlMsg msg) override;
  ResyncMsg ShipResync(int site, ResyncMsg msg) override;
  ControlMsg SendControl(int site, ControlMsg msg) override;
  CounterMsg SendCounter(int site, CounterMsg msg) override;
  PhiValueMsg SendPhiValue(int site, PhiValueMsg msg) override;
  DriftFlushMsg SendDriftFlush(int site, DriftFlushMsg msg) override;
  RawUpdateMsg SendRawUpdate(int site, RawUpdateMsg msg) override;

  /// Fire-and-forget counter datagram between endpoints (from, to), one
  /// of which must be kParent. Charges one word, samples loss and delay,
  /// and queues the delivery. The sending child endpoint must be up.
  void PostCounter(int from, int to, CounterMsg msg, int64_t round,
                   int64_t subround);

  /// Flat fast path: (site, kParent), i.e. site → coordinator.
  void PostCounter(int site, CounterMsg msg, int64_t round,
                   int64_t subround) {
    PostCounter(site, kParent, msg, round, subround);
  }

  /// Pops the next datagram whose due tick has been reached, in
  /// (due, send order) — jitter beyond the base latency produces genuine
  /// reordering. Returns false when nothing is deliverable yet.
  bool PopCounter(CounterDelivery* out);

  /// Pops the next fault transition scheduled at or before the current
  /// tick, applying its link-state flip (and emitting SiteDown for down
  /// flips). Returns false when none is pending.
  bool PopFault(FaultNotice* out);

  /// Advances the simulated clock (protocols tick once per record; RPCs
  /// advance by their sampled delays internally).
  void Advance(int64_t ticks);
  int64_t now() const { return now_; }

  /// Link state as of the last drained transition.
  bool SiteUp(int site) const;

  /// Advances the clock past the last queued datagram so a final drain
  /// delivers everything, and records the final tick.
  void FinishRun();

  bool null_mode() const { return null_; }
  const NetSimConfig& config() const { return config_; }
  const SimNetStats& net_stats() const { return net_stats_; }
  /// Per-site attribution (one entry per site, cumulative).
  const std::vector<SiteNetStats>& site_stats() const { return site_stats_; }

  // Protocol-side accounting surfaced with the network counters.
  void NoteTimeout() { ++net_stats_.timeouts; }
  void NoteResync() { ++net_stats_.resyncs; }
  void NoteStale() { ++net_stats_.stale_msgs; }

 private:
  struct Envelope {
    int64_t due = 0;
    int64_t seq = 0;
    CounterDelivery delivery;
  };
  struct EnvelopeLater {
    bool operator()(const Envelope& a, const Envelope& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  /// A resolved (from, to) endpoint pair: the child whose link carries
  /// the message, and the direction (+1 parent → child, -1 child →
  /// parent).
  struct Route {
    int child;
    int dir;
  };
  /// Resolves general (from, to) addressing against this star: exactly
  /// one endpoint must be kParent, the other a valid child id.
  Route Resolve(int from, int to) const;

  /// Strict encode → size-check → charge → decode → bit-verify, plus the
  /// simulated delay and drop/retransmit loop, between endpoints
  /// (from, to).
  template <typename Msg, typename DecodeFn>
  Msg Rpc(int from, int to, MsgKind kind, const Msg& msg,
          int64_t charged_words, DecodeFn decode);

  /// Encode/verify without network semantics (shared by Rpc/PostCounter).
  template <typename Msg, typename DecodeFn>
  Msg CheckedRoundTrip(const Msg& msg, int64_t charged_words,
                       DecodeFn decode);

  void Charge(Route route, MsgKind kind, int64_t words);
  bool SampleDrop();
  int64_t SampleLatency();
  int64_t TransferTicks(int64_t words) const;
  void EmitNetEvent(TraceEventKind kind, Route route, MsgKind msg_kind,
                    int64_t words, int64_t t, const char* reason);

  NetSimConfig config_;
  LatencySpec latency_;
  bool null_ = false;
  int64_t now_ = 0;
  int64_t next_seq_ = 0;
  Xoshiro256ss rng_;
  std::vector<char> site_up_;
  std::vector<FaultTransition> transitions_;
  size_t next_transition_ = 0;
  std::priority_queue<Envelope, std::vector<Envelope>, EnvelopeLater>
      queue_;
  TraceSink* trace_ = nullptr;
  SimNetStats net_stats_;
  std::vector<SiteNetStats> site_stats_;
};

}  // namespace sim
}  // namespace fgm

#endif  // FGM_SIM_EVENT_NETWORK_H_
