#include "sim/event_network.h"

#include <cmath>

#include "obs/span.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fgm {
namespace sim {

namespace {

// Runaway backstop for the RPC retransmission loop: with drop < 1 the
// expected attempt count is 1/(1-drop); ten thousand failures in a row
// means the configuration (or the generator) is broken.
constexpr int kMaxRpcAttempts = 10000;

}  // namespace

EventNetwork::EventNetwork(int sites, const NetSimConfig& config)
    : Transport(sites),
      config_(config),
      rng_(config.seed),
      site_up_(static_cast<size_t>(sites), 1),
      site_stats_(static_cast<size_t>(sites)) {
  FGM_CHECK(ParseLatencySpec(config.latency, &latency_));
  FGM_CHECK(config.drop >= 0.0 && config.drop < 1.0);
  FGM_CHECK_GE(config.bandwidth, 0);
  FGM_CHECK_GE(config.reorder_window, 0);
  FGM_CHECK_GE(config.retransmit_timeout, 1);
  FGM_CHECK_GE(config.silence_timeout, 1);
  FGM_CHECK_GE(config.dead_deadline, 1);
  FGM_CHECK(ParseFaultPlan(config.fault_plan, sites, &transitions_));
  null_ = latency_.kind == LatencySpec::Kind::kZero && config.drop == 0.0 &&
          transitions_.empty() && config.bandwidth == 0 &&
          config.reorder_window == 0;
}

void EventNetwork::set_trace(TraceSink* trace) {
  trace_ = trace;
  network_.set_trace(trace);
}

void EventNetwork::set_spans(SpanSink* spans) {
  spans_ = spans;
  if (spans != nullptr) spans->UseTickClock(&now_);
}

bool EventNetwork::SiteUp(int site) const {
  FGM_CHECK(site >= 0 && site < sites());
  return site_up_[static_cast<size_t>(site)] != 0;
}

void EventNetwork::Advance(int64_t ticks) {
  FGM_CHECK_GE(ticks, 0);
  now_ += ticks;
}

EventNetwork::Route EventNetwork::Resolve(int from, int to) const {
  // General (from, to) addressing with the star constraint: this network
  // models the links between one parent (kParent) and its children, so
  // exactly one endpoint of every message is the parent. Tree topologies
  // (src/hier) route along tree edges by addressing each tier's links
  // parent-relative through its own network instance.
  FGM_CHECK((from == kParent) != (to == kParent));
  const int child = from == kParent ? to : from;
  FGM_CHECK(child >= 0 && child < sites());
  return Route{child, from == kParent ? +1 : -1};
}

void EventNetwork::Charge(Route route, MsgKind kind, int64_t words) {
  if (route.dir > 0) {
    network_.Upstream(route.child, kind, words);
  } else {
    network_.Downstream(route.child, kind, words);
  }
}

bool EventNetwork::SampleDrop() {
  return config_.drop > 0.0 && rng_.NextDouble() < config_.drop;
}

int64_t EventNetwork::SampleLatency() {
  switch (latency_.kind) {
    case LatencySpec::Kind::kZero:
      return 0;
    case LatencySpec::Kind::kFixed:
      return static_cast<int64_t>(latency_.a);
    case LatencySpec::Kind::kUniform:
      return rng_.NextInt(static_cast<int64_t>(latency_.a),
                          static_cast<int64_t>(latency_.b));
    case LatencySpec::Kind::kExp:
      return static_cast<int64_t>(
          std::floor(rng_.NextExponential(1.0 / latency_.a)));
  }
  FGM_CHECK(false);
  return 0;
}

int64_t EventNetwork::TransferTicks(int64_t words) const {
  if (config_.bandwidth <= 0) return 0;
  return (words + config_.bandwidth - 1) / config_.bandwidth;
}

void EventNetwork::EmitNetEvent(TraceEventKind kind, Route route,
                                MsgKind msg_kind, int64_t words,
                                int64_t t, const char* reason) {
  if (trace_ == nullptr || null_) return;
  TraceEvent e;
  e.kind = kind;
  e.site = route.child;
  e.label = MsgKindName(msg_kind);
  e.dir = route.dir;
  e.words = words;
  e.t = t;
  e.reason = reason;
  e.tier = network_.tier();
  trace_->Emit(e);
}

template <typename Msg, typename DecodeFn>
Msg EventNetwork::CheckedRoundTrip(const Msg& msg, int64_t charged_words,
                                   DecodeFn decode) {
  WordBuffer wire;
  msg.Encode(&wire);
  FGM_CHECK_EQ(static_cast<int64_t>(wire.size_words()), charged_words);
  // Decode sees the payload only — a receiver strips the known trailing
  // span-id word before decoding (some payloads infer their length from
  // the buffer size).
  Msg decoded = decode(wire);
  WordBuffer reencoded;
  decoded.Encode(&reencoded);
  if (span_wire_) {
    const int64_t span_id = spans_ != nullptr ? spans_->CurrentId() : 0;
    wire.PutCount(span_id);
    reencoded.PutCount(span_id);
  }
  FGM_CHECK(wire.SameBits(reencoded));
  return decoded;
}

template <typename Msg, typename DecodeFn>
Msg EventNetwork::Rpc(int from, int to, MsgKind kind, const Msg& msg,
                      int64_t charged_words, DecodeFn decode) {
  const Route route = Resolve(from, to);
  const int site = route.child;
  const int dir = route.dir;
  // The protocols never address a down endpoint over the control plane;
  // the pause/resync machinery (core/fgm_protocol.cc, src/hier)
  // guarantees it.
  FGM_CHECK(SiteUp(site));
  int64_t rpc_span = 0;
  if (spans_ != nullptr) {
    // Opened before the round trip so the wire envelope (span_wire)
    // carries this RPC's id; one kMsg child per attempt follows.
    rpc_span = spans_->Begin(SpanKind::kRpc, site, 0, 0, MsgKindName(kind));
    if (network_.tier() != 0) spans_->SetTier(rpc_span, network_.tier());
  }
  Msg decoded = CheckedRoundTrip(msg, charged_words, decode);
  const int64_t wire_words = charged_words + SpanWireExtra();
  int64_t total_words = 0;
  for (int attempt = 0;; ++attempt) {
    FGM_CHECK_LT(attempt, kMaxRpcAttempts);
    Charge(route, kind, wire_words);
    total_words += wire_words;
    SiteNetStats& ss = site_stats_[static_cast<size_t>(site)];
    if (attempt > 0) {
      ++net_stats_.retransmitted_msgs;
      net_stats_.retransmitted_words += wire_words;
      ++ss.retransmitted_msgs;
      ss.retransmitted_words += wire_words;
    }
    if (SampleDrop()) {
      ++net_stats_.dropped_msgs;
      net_stats_.dropped_words += wire_words;
      ++ss.dropped_msgs;
      ss.dropped_words += wire_words;
      EmitNetEvent(TraceEventKind::kMsgDropped, route, kind,
                   wire_words, now_, "loss");
      if (spans_ != nullptr) {
        // The lost attempt occupies the sender until its timeout fires.
        Span s;
        s.kind = SpanKind::kMsg;
        s.site = site;
        s.begin = now_;
        s.end = now_ + config_.retransmit_timeout;
        s.words = wire_words;
        s.count = 1;
        s.dir = dir;
        s.tier = network_.tier();
        s.label = MsgKindName(kind);
        s.reason = "loss";
        spans_->EmitComplete(s);
      }
      // The sender detects the loss by timeout and resends.
      Advance(config_.retransmit_timeout);
      continue;
    }
    const int64_t delay = SampleLatency() + TransferTicks(wire_words);
    const int64_t sent = now_;
    Advance(delay);
    ++net_stats_.delivered_msgs;
    net_stats_.delivered_words += wire_words;
    ++ss.delivered_msgs;
    ss.delivered_words += wire_words;
    ss.latency_ticks += delay;
    ++ss.latency_samples;
    EmitNetEvent(TraceEventKind::kMsgDelivered, route, kind,
                 wire_words, now_, nullptr);
    if (spans_ != nullptr) {
      Span s;
      s.kind = SpanKind::kMsg;
      s.site = site;
      s.begin = sent;
      s.end = now_;
      s.words = wire_words;
      s.count = 1;
      s.dir = dir;
      s.tier = network_.tier();
      s.transit = delay;
      s.label = MsgKindName(kind);
      spans_->EmitComplete(s);
      spans_->EndWithStats(rpc_span, nullptr, total_words, attempt + 1);
    }
    return decoded;
  }
}

SafeZoneMsg EventNetwork::ShipSafeZone(int site, SafeZoneMsg msg) {
  const size_t dim = msg.reference.dim();
  return Rpc(kParent, site, MsgKind::kSafeZone, msg, msg.Words(),
             [dim](const WordBuffer& in) {
               return SafeZoneMsg::Decode(in, dim);
             });
}

CheapZoneMsg EventNetwork::ShipCheapZone(int site, CheapZoneMsg msg) {
  // Cheap bounds are safe-zone shipments in the cost breakdown.
  return Rpc(kParent, site, MsgKind::kSafeZone, msg, CheapZoneMsg::kWords,
             [](const WordBuffer& in) { return CheapZoneMsg::Decode(in); });
}

QuantumMsg EventNetwork::ShipQuantum(int site, QuantumMsg msg) {
  return Rpc(kParent, site, MsgKind::kQuantum, msg, QuantumMsg::kWords,
             [](const WordBuffer& in) { return QuantumMsg::Decode(in); });
}

LambdaMsg EventNetwork::ShipLambda(int site, LambdaMsg msg) {
  return Rpc(kParent, site, MsgKind::kLambda, msg, LambdaMsg::kWords,
             [](const WordBuffer& in) { return LambdaMsg::Decode(in); });
}

ControlMsg EventNetwork::ShipControl(int site, ControlMsg msg) {
  return Rpc(kParent, site, MsgKind::kControl, msg, ControlMsg::kWords,
             [](const WordBuffer& in) { return ControlMsg::Decode(in); });
}

ResyncMsg EventNetwork::ShipResync(int site, ResyncMsg msg) {
  const size_t dim = msg.reference.dim();
  return Rpc(kParent, site, MsgKind::kResync, msg, msg.Words(),
             [dim](const WordBuffer& in) {
               return ResyncMsg::Decode(in, dim);
             });
}

ControlMsg EventNetwork::SendControl(int site, ControlMsg msg) {
  return Rpc(site, kParent, MsgKind::kControl, msg, ControlMsg::kWords,
             [](const WordBuffer& in) { return ControlMsg::Decode(in); });
}

CounterMsg EventNetwork::SendCounter(int site, CounterMsg msg) {
  return Rpc(site, kParent, MsgKind::kCounter, msg, CounterMsg::kWords,
             [](const WordBuffer& in) { return CounterMsg::Decode(in); });
}

PhiValueMsg EventNetwork::SendPhiValue(int site, PhiValueMsg msg) {
  return Rpc(site, kParent, MsgKind::kPhiValue, msg, PhiValueMsg::kWords,
             [](const WordBuffer& in) { return PhiValueMsg::Decode(in); });
}

DriftFlushMsg EventNetwork::SendDriftFlush(int site, DriftFlushMsg msg) {
  return Rpc(site, kParent, MsgKind::kDriftFlush, msg, msg.Words(),
             [](const WordBuffer& in) { return DriftFlushMsg::Decode(in); });
}

RawUpdateMsg EventNetwork::SendRawUpdate(int site, RawUpdateMsg msg) {
  return Rpc(site, kParent, MsgKind::kRawUpdate, msg, msg.Words(),
             [](const WordBuffer& in) {
               return RawUpdateMsg::Decode(in, 0);
             });
}

void EventNetwork::PostCounter(int from, int to, CounterMsg msg, int64_t round,
                               int64_t subround) {
  const Route route = Resolve(from, to);
  const int site = route.child;
  FGM_CHECK(SiteUp(site));
  const CounterMsg decoded = CheckedRoundTrip(
      msg, CounterMsg::kWords,
      [](const WordBuffer& in) { return CounterMsg::Decode(in); });
  const int64_t wire_words = CounterMsg::kWords + SpanWireExtra();
  Charge(route, MsgKind::kCounter, wire_words);
  if (SampleDrop()) {
    ++net_stats_.dropped_msgs;
    net_stats_.dropped_words += wire_words;
    SiteNetStats& ss = site_stats_[static_cast<size_t>(site)];
    ++ss.dropped_msgs;
    ss.dropped_words += wire_words;
    EmitNetEvent(TraceEventKind::kMsgDropped, route, MsgKind::kCounter,
                 wire_words, now_, "loss");
    if (spans_ != nullptr) {
      // Charged but never delivered: a point span keeps the word sums
      // conserved against MsgSent.
      Span s;
      s.kind = SpanKind::kDatagram;
      s.parent = spans_->root();
      s.site = site;
      s.round = round;
      s.subround = subround;
      s.begin = now_;
      s.words = wire_words;
      s.count = 1;
      s.dir = route.dir;
      s.tier = network_.tier();
      s.label = MsgKindName(MsgKind::kCounter);
      s.reason = "loss";
      spans_->EmitComplete(s);
    }
    return;  // no retransmission: cumulative counters self-heal
  }
  int64_t delay = SampleLatency() + TransferTicks(wire_words);
  if (config_.reorder_window > 0) {
    delay += rng_.NextInt(0, config_.reorder_window);
  }
  Envelope env;
  env.due = now_ + delay;
  env.seq = next_seq_++;
  env.delivery.site = site;
  env.delivery.from = from;
  env.delivery.to = to;
  env.delivery.msg = decoded;
  env.delivery.round = round;
  env.delivery.subround = subround;
  env.delivery.due = env.due;
  env.delivery.posted = now_;
  queue_.push(env);
  net_stats_.in_flight_words += wire_words;
  if (net_stats_.in_flight_words > net_stats_.max_in_flight_words) {
    net_stats_.max_in_flight_words = net_stats_.in_flight_words;
  }
}

bool EventNetwork::PopCounter(CounterDelivery* out) {
  if (queue_.empty() || queue_.top().due > now_) return false;
  *out = queue_.top().delivery;
  queue_.pop();
  const int64_t wire_words = CounterMsg::kWords + SpanWireExtra();
  net_stats_.in_flight_words -= wire_words;
  ++net_stats_.delivered_msgs;
  net_stats_.delivered_words += wire_words;
  SiteNetStats& ss = site_stats_[static_cast<size_t>(out->site)];
  ++ss.delivered_msgs;
  ss.delivered_words += wire_words;
  ss.latency_ticks += out->due - out->posted;
  ++ss.latency_samples;
  const Route route{out->site, out->from == kParent ? +1 : -1};
  EmitNetEvent(TraceEventKind::kMsgDelivered, route, MsgKind::kCounter,
               wire_words, out->due, nullptr);
  if (spans_ != nullptr) {
    // post → due is wire time; due → drain is how long the datagram sat
    // waiting for the protocol to reach a safe drain point.
    Span s;
    s.kind = SpanKind::kDatagram;
    s.parent = spans_->root();
    s.site = out->site;
    s.round = out->round;
    s.subround = out->subround;
    s.begin = out->posted;
    s.end = now_;
    s.words = wire_words;
    s.count = 1;
    s.dir = route.dir;
    s.tier = network_.tier();
    s.transit = out->due - out->posted;
    s.drain = now_ - out->due;
    s.label = MsgKindName(MsgKind::kCounter);
    spans_->EmitComplete(s);
  }
  return true;
}

bool EventNetwork::PopFault(FaultNotice* out) {
  if (next_transition_ >= transitions_.size() ||
      transitions_[next_transition_].at > now_) {
    return false;
  }
  const FaultTransition& t = transitions_[next_transition_++];
  site_up_[static_cast<size_t>(t.site)] = t.up ? 1 : 0;
  out->site = t.site;
  out->up = t.up;
  out->reason = t.reason;
  if (!t.up) {
    ++net_stats_.site_downs;
    ++site_stats_[static_cast<size_t>(t.site)].downs;
    if (trace_ != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kSiteDown;
      e.site = t.site;
      e.t = t.at;
      e.reason = t.reason;
      trace_->Emit(e);
    }
  }
  return true;
}

void EventNetwork::FinishRun() {
  // Let every in-flight datagram land (the protocol drains after this),
  // and dispatch any fault transition already in the past.
  if (!queue_.empty()) {
    // The latest due tick is not necessarily at the top; advance until
    // the queue can fully drain.
    std::priority_queue<Envelope, std::vector<Envelope>, EnvelopeLater>
        copy = queue_;
    int64_t last = now_;
    while (!copy.empty()) {
      if (copy.top().due > last) last = copy.top().due;
      copy.pop();
    }
    if (last > now_) Advance(last - now_);
  }
  net_stats_.final_tick = now_;
}

}  // namespace sim
}  // namespace fgm
