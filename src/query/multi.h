// Simultaneous monitoring of several continuous queries with ONE FGM
// instance ("one for all and all for one", Lazerson et al. KDD'17, via
// the composition machinery of Thm 2.2).
//
// The combined state is the concatenation of the member queries' states;
// the combined safe function is the pointwise max of the members' safe
// functions lifted to the product space, so its admissible region is the
// intersection of the members'. A single round/subround structure then
// guarantees every member's (1±ε) bound at once — one set of quanta,
// counters and drift flushes instead of one per query.

#ifndef FGM_QUERY_MULTI_H_
#define FGM_QUERY_MULTI_H_

#include <memory>
#include <string>
#include <vector>

#include "query/query.h"

namespace fgm {

class MultiQuery : public ContinuousQuery {
 public:
  explicit MultiQuery(std::vector<std::unique_ptr<ContinuousQuery>> members);

  std::string name() const override;
  size_t dimension() const override { return total_dim_; }
  void MapRecord(const StreamRecord& record,
                 std::vector<CellUpdate>* out) const override;

  /// The scalar the coordinator reports is the first member's value;
  /// per-member values come from EvaluateMember.
  double Evaluate(const RealVector& state) const override;
  double EvaluateMember(size_t member, const RealVector& state) const;

  /// The combined thresholds are the FIRST member's (each member's own
  /// bounds are enforced by the safe function; verify per member with
  /// MemberThresholds).
  ThresholdPair Thresholds(const RealVector& estimate) const override;
  ThresholdPair MemberThresholds(size_t member,
                                 const RealVector& estimate) const;

  std::unique_ptr<SafeFunction> MakeSafeFunction(
      const RealVector& estimate) const override;
  double epsilon() const override;

  size_t member_count() const { return members_.size(); }
  const ContinuousQuery& member(size_t i) const { return *members_[i]; }
  size_t member_offset(size_t i) const { return offsets_[i]; }

 private:
  RealVector MemberSlice(size_t member, const RealVector& state) const;

  std::vector<std::unique_ptr<ContinuousQuery>> members_;
  std::vector<size_t> offsets_;
  size_t total_dim_;
};

}  // namespace fgm

#endif  // FGM_QUERY_MULTI_H_
