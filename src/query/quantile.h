// Quantile (percentile) monitoring — one of the canonical distributed
// functional-monitoring problems the paper's introduction cites.
//
// The state is the frequency histogram of a numeric attribute over a
// fixed bucketized domain (dimension = #buckets); the monitored value is
// the p-quantile bucket: the smallest bucket b whose cumulative count
// reaches p · N. Both sides of the guarantee are *linear* conditions on
// the state —
//     quantile(S) ≥ b_lo  ⇔  prefix_{b_lo-1}(S) - p·N(S) < 0,
//     quantile(S) ≤ b_hi  ⇔  p·N(S) - prefix_{b_hi}(S) ≤ 0,
// so the safe zone is just the max-composition of two halfspaces and FGM
// monitors percentiles with the machinery already in the library. The
// bounds [b_lo, b_hi] are chosen from the reference E with a rank slack
// of ε·N on each side (the standard ε-approximate quantile guarantee).

#ifndef FGM_QUERY_QUANTILE_H_
#define FGM_QUERY_QUANTILE_H_

#include <memory>
#include <string>

#include "query/query.h"

namespace fgm {

class QuantileQuery : public ContinuousQuery {
 public:
  /// Monitors the `phi`-quantile (e.g. 0.5 = median, 0.95) of the
  /// response-size distribution bucketized into `buckets` buckets of
  /// geometric width over (0, max_value]. `epsilon` is the rank accuracy
  /// as a fraction of the stream size N.
  QuantileQuery(int buckets, double phi, double epsilon,
                double max_value = 20000.0, double bootstrap_count = 32.0);

  std::string name() const override;
  size_t dimension() const override { return static_cast<size_t>(buckets_); }
  void MapRecord(const StreamRecord& record,
                 std::vector<CellUpdate>* out) const override;

  /// The quantile *bucket index* (comparable against the thresholds).
  double Evaluate(const RealVector& state) const override;

  /// [b_lo, b_hi]: the bucket-index interval guaranteed for quantile(S).
  ThresholdPair Thresholds(const RealVector& estimate) const override;
  std::unique_ptr<SafeFunction> MakeSafeFunction(
      const RealVector& estimate) const override;
  double epsilon() const override { return epsilon_; }

  /// The numeric value a bucket index represents (upper edge).
  double BucketValue(int bucket) const;
  /// The bucket a value falls into.
  int BucketOf(double value) const;

 private:
  bool Bootstrapping(const RealVector& estimate) const;
  /// Smallest b with Σ_{i<=b} state[i] >= phi·N; buckets_-1 if none.
  int QuantileBucket(const RealVector& state) const;

  int buckets_;
  double phi_;
  double epsilon_;
  double max_value_;
  double bootstrap_count_;
  double log_ratio_;  // geometric bucketization constant
};

}  // namespace fgm

#endif  // FGM_QUERY_QUANTILE_H_
