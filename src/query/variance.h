// Variance monitoring — the motivating query of the original Geometric
// Monitoring paper (Sharfman et al. SIGMOD'06), expressed in this
// library's query interface.
//
// The monitored value is the variance of a numeric attribute of the
// stream records (here: a synthetic response size derived
// deterministically from the record, see ResponseSizeOf) over the
// current window. The linear state is s = (count, Σv, Σv²), so inserts
// and window deletions are ordinary ±deltas and the global state is the
// average of local states as usual; the variance V2/n - (V1/n)² is
// invariant under that 1/k scaling.
//
// Cold start: the variance of an empty window is undefined, so while the
// reference count is below `bootstrap_count` the query monitors a simple
// drift ball (forcing quick cheap syncs) and reports unbounded
// thresholds; the real guarantee starts once enough data has been seen.

#ifndef FGM_QUERY_VARIANCE_H_
#define FGM_QUERY_VARIANCE_H_

#include <memory>
#include <string>

#include "query/query.h"

namespace fgm {

/// Deterministic synthetic "response size" of a request record, in KB:
/// type-dependent base size times a heavy-tailed per-client factor.
double ResponseSizeOf(const StreamRecord& record);

class VarianceQuery : public ContinuousQuery {
 public:
  VarianceQuery(double epsilon, double threshold_floor = 1e-3,
                double bootstrap_count = 32.0);

  std::string name() const override { return "variance"; }
  size_t dimension() const override { return 3; }
  void MapRecord(const StreamRecord& record,
                 std::vector<CellUpdate>* out) const override;
  double Evaluate(const RealVector& state) const override;
  ThresholdPair Thresholds(const RealVector& estimate) const override;
  std::unique_ptr<SafeFunction> MakeSafeFunction(
      const RealVector& estimate) const override;
  double epsilon() const override { return epsilon_; }

 private:
  bool Bootstrapping(const RealVector& estimate) const;

  double epsilon_;
  double floor_;
  double bootstrap_count_;
};

}  // namespace fgm

#endif  // FGM_QUERY_VARIANCE_H_
