#include "query/query.h"

#include <algorithm>
#include <cmath>

#include "safezone/compose.h"
#include "safezone/join_sz.h"
#include "safezone/norm_threshold.h"
#include "safezone/selfjoin_sz.h"
#include "util/check.h"

namespace fgm {

ThresholdPair RelativeThresholds(double q, double epsilon, double floor) {
  FGM_CHECK_GT(epsilon, 0.0);
  FGM_CHECK_GT(floor, 0.0);
  const double margin = std::max(epsilon * std::fabs(q), floor);
  return ThresholdPair{q - margin, q + margin};
}

// ---------------------------------------------------------------------------
// SelfJoinQuery (Q1)
// ---------------------------------------------------------------------------

SelfJoinQuery::SelfJoinQuery(std::shared_ptr<const AgmsProjection> projection,
                             double epsilon, double threshold_floor)
    : projection_(std::move(projection)),
      epsilon_(epsilon),
      floor_(threshold_floor) {
  FGM_CHECK_GT(epsilon, 0.0);
  FGM_CHECK_EQ(projection_->depth() % 2, 1);
}

void SelfJoinQuery::MapRecord(const StreamRecord& record,
                              std::vector<CellUpdate>* out) const {
  projection_->Map(record.cid, record.weight, out);
}

void SelfJoinQuery::MapRecordBatch(const StreamRecord* base,
                                   const int64_t* positions, int64_t n,
                                   std::vector<CellUpdate>* out,
                                   std::vector<size_t>* ends) const {
  const size_t depth = static_cast<size_t>(projection_->depth());
  constexpr int64_t kBlock = 128;
  uint64_t keys[kBlock];
  double weights[kBlock];
  for (int64_t start = 0; start < n; start += kBlock) {
    const int64_t m = std::min(kBlock, n - start);
    for (int64_t j = 0; j < m; ++j) {
      const StreamRecord& record = base[positions[start + j]];
      keys[j] = record.cid;
      weights[j] = record.weight;
    }
    const size_t before = out->size();
    out->resize(before + static_cast<size_t>(m) * depth);
    projection_->MapBatch(keys, weights, static_cast<size_t>(m),
                          out->data() + before);
    for (int64_t j = 0; j < m; ++j) {
      ends->push_back(before + static_cast<size_t>(j + 1) * depth);
    }
  }
}

double SelfJoinQuery::Evaluate(const RealVector& state) const {
  return SelfJoinEstimate(*projection_, state);
}

ThresholdPair SelfJoinQuery::Thresholds(const RealVector& estimate) const {
  return RelativeThresholds(Evaluate(estimate), epsilon_, floor_);
}

std::unique_ptr<SafeFunction> SelfJoinQuery::MakeSafeFunction(
    const RealVector& estimate) const {
  const ThresholdPair t = Thresholds(estimate);
  return std::make_unique<SelfJoinSafeFunction>(projection_, estimate, t.lo,
                                                t.hi);
}

// ---------------------------------------------------------------------------
// JoinQuery (Q2)
// ---------------------------------------------------------------------------

JoinQuery::JoinQuery(std::shared_ptr<const AgmsProjection> projection,
                     double epsilon, double threshold_floor)
    : projection_(std::move(projection)),
      epsilon_(epsilon),
      floor_(threshold_floor) {
  FGM_CHECK_GT(epsilon, 0.0);
  FGM_CHECK_EQ(projection_->depth() % 2, 1);
}

void JoinQuery::MapRecord(const StreamRecord& record,
                          std::vector<CellUpdate>* out) const {
  const size_t before = out->size();
  projection_->Map(record.cid, record.weight, out);
  if (record.type != FileType::kHtml) {
    // Non-HTML records land in the second sketch (indices offset by D).
    const size_t offset = projection_->dimension();
    for (size_t j = before; j < out->size(); ++j) {
      (*out)[j].index += offset;
    }
  }
}

void JoinQuery::MapRecordBatch(const StreamRecord* base,
                               const int64_t* positions, int64_t n,
                               std::vector<CellUpdate>* out,
                               std::vector<size_t>* ends) const {
  const size_t depth = static_cast<size_t>(projection_->depth());
  const size_t offset = projection_->dimension();
  constexpr int64_t kBlock = 128;
  uint64_t keys[kBlock];
  double weights[kBlock];
  for (int64_t start = 0; start < n; start += kBlock) {
    const int64_t m = std::min(kBlock, n - start);
    for (int64_t j = 0; j < m; ++j) {
      const StreamRecord& record = base[positions[start + j]];
      keys[j] = record.cid;
      weights[j] = record.weight;
    }
    const size_t before = out->size();
    out->resize(before + static_cast<size_t>(m) * depth);
    projection_->MapBatch(keys, weights, static_cast<size_t>(m),
                          out->data() + before);
    for (int64_t j = 0; j < m; ++j) {
      const StreamRecord& record = base[positions[start + j]];
      if (record.type != FileType::kHtml) {
        // Non-HTML records land in the second sketch, as in MapRecord.
        CellUpdate* slice = out->data() + before + static_cast<size_t>(j) * depth;
        for (size_t d = 0; d < depth; ++d) slice[d].index += offset;
      }
      ends->push_back(before + static_cast<size_t>(j + 1) * depth);
    }
  }
}

double JoinQuery::Evaluate(const RealVector& state) const {
  return JoinEstimateConcatenated(*projection_, state);
}

ThresholdPair JoinQuery::Thresholds(const RealVector& estimate) const {
  return RelativeThresholds(Evaluate(estimate), epsilon_, floor_);
}

std::unique_ptr<SafeFunction> JoinQuery::MakeSafeFunction(
    const RealVector& estimate) const {
  const ThresholdPair t = Thresholds(estimate);
  return std::make_unique<JoinSafeFunction>(projection_, estimate, t.lo, t.hi);
}

// ---------------------------------------------------------------------------
// FpNormQuery
// ---------------------------------------------------------------------------

FpNormQuery::FpNormQuery(size_t dimension, double p, double epsilon, Mode mode,
                         double threshold_floor)
    : dimension_(dimension),
      p_(p),
      epsilon_(epsilon),
      mode_(mode),
      floor_(threshold_floor) {
  FGM_CHECK_GE(p, 1.0);
  FGM_CHECK_GT(epsilon, 0.0);
  FGM_CHECK_GE(dimension, 1u);
  if (mode == Mode::kTwoSided) {
    // The two-sided composition of §3.0.3 is specific to the Euclidean
    // norm (the halfspace lower bound is tangent to an L2 ball).
    FGM_CHECK_EQ(p, 2.0);
  }
}

std::string FpNormQuery::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "F%.3g-norm", p_);
  return buf;
}

void FpNormQuery::MapRecord(const StreamRecord& record,
                            std::vector<CellUpdate>* out) const {
  out->push_back(CellUpdate{record.cid % dimension_, record.weight});
}

double FpNormQuery::Evaluate(const RealVector& state) const {
  return state.LpNorm(p_);
}

ThresholdPair FpNormQuery::Thresholds(const RealVector& estimate) const {
  return RelativeThresholds(Evaluate(estimate), epsilon_, floor_);
}

std::unique_ptr<SafeFunction> FpNormQuery::MakeSafeFunction(
    const RealVector& estimate) const {
  const ThresholdPair t = Thresholds(estimate);
  if (mode_ == Mode::kTwoSided && estimate.Norm() > 0.0) {
    return MakeF2TwoSided(estimate, epsilon_);
  }
  // Monotone (or cold-start) case: the upper bound alone is safe for
  // insert-only streams.
  return std::make_unique<LpNormThreshold>(estimate, p_, t.hi);
}

}  // namespace fgm
