// Continuous-query specifications.
//
// A ContinuousQuery encapsulates everything problem-specific about a
// monitoring task, keeping the protocols (FGM, GM, centralizing baseline)
// completely generic — the separation of concerns that is the central
// practical point of the paper:
//   * the linear summary: how a stream record maps to state-vector deltas
//     (e.g. the Fast-AGMS projection);
//   * the query function Q on state vectors;
//   * the safe-function family: given the coordinator's estimate E, build
//     the (A, E, k)-safe function for the admissible region
//         A = {x : Q(x) ∈ [T_lo, T_hi]},
//     with T_lo/hi = Q(E) ∓ max(ε·|Q(E)|, floor). The small absolute
//     `floor` keeps thresholds nondegenerate at Q(E) ≈ 0 (cold start);
//     the guarantee maintained is the standard relative-with-floor bound
//     |Q(S) - Q(E)| ≤ max(ε|Q(E)|, floor).

#ifndef FGM_QUERY_QUERY_H_
#define FGM_QUERY_QUERY_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "safezone/safe_function.h"
#include "sketch/fast_agms.h"
#include "stream/record.h"
#include "util/real_vector.h"

namespace fgm {

struct ThresholdPair {
  double lo;
  double hi;
};

class ContinuousQuery {
 public:
  virtual ~ContinuousQuery() = default;

  virtual std::string name() const = 0;

  /// Dimension D of the state vectors.
  virtual size_t dimension() const = 0;

  /// Appends the state-vector deltas of one stream record to `out`.
  virtual void MapRecord(const StreamRecord& record,
                         std::vector<CellUpdate>* out) const = 0;

  /// Batched MapRecord over `n` records gathered as base[positions[j]],
  /// j in [0, n): appends every record's deltas to `out` in record order
  /// and pushes the post-record out->size() onto `ends` (so record j's
  /// deltas are [j == 0 ? start : ends[j-1], ends[j])). The deltas are
  /// bit-identical to n sequential MapRecord calls; projection-backed
  /// queries override this with a row-major batch that amortizes the
  /// hash-family work (the FastAgms::UpdateBatch idiom). Thread-safe:
  /// touches only caller-provided buffers.
  virtual void MapRecordBatch(const StreamRecord* base,
                              const int64_t* positions, int64_t n,
                              std::vector<CellUpdate>* out,
                              std::vector<size_t>* ends) const {
    for (int64_t j = 0; j < n; ++j) {
      MapRecord(base[positions[j]], out);
      ends->push_back(out->size());
    }
  }

  /// Exact query value on a state vector.
  virtual double Evaluate(const RealVector& state) const = 0;

  /// Monitoring thresholds around the estimate: [T_lo, T_hi].
  virtual ThresholdPair Thresholds(const RealVector& estimate) const = 0;

  /// Builds the safe function for the admissible region around `estimate`.
  virtual std::unique_ptr<SafeFunction> MakeSafeFunction(
      const RealVector& estimate) const = 0;

  /// Relative monitoring accuracy ε.
  virtual double epsilon() const = 0;
};

/// Q1 of the paper: self-join size R ⋈_CID R, estimated by the median of
/// the squared row norms of one Fast-AGMS sketch over the CID frequency
/// vector.
class SelfJoinQuery : public ContinuousQuery {
 public:
  SelfJoinQuery(std::shared_ptr<const AgmsProjection> projection,
                double epsilon, double threshold_floor = 1.0);

  std::string name() const override { return "Q1-selfjoin"; }
  size_t dimension() const override { return projection_->dimension(); }
  void MapRecord(const StreamRecord& record,
                 std::vector<CellUpdate>* out) const override;
  void MapRecordBatch(const StreamRecord* base, const int64_t* positions,
                      int64_t n, std::vector<CellUpdate>* out,
                      std::vector<size_t>* ends) const override;
  double Evaluate(const RealVector& state) const override;
  ThresholdPair Thresholds(const RealVector& estimate) const override;
  std::unique_ptr<SafeFunction> MakeSafeFunction(
      const RealVector& estimate) const override;
  double epsilon() const override { return epsilon_; }

  const AgmsProjection& projection() const { return *projection_; }

 private:
  std::shared_ptr<const AgmsProjection> projection_;
  double epsilon_;
  double floor_;
};

/// Q2 of the paper: join size σ_{TYPE=HTML}(R) ⋈_CID σ_{TYPE≠HTML}(R).
/// The state vector is the concatenation of the two filtered sketches.
class JoinQuery : public ContinuousQuery {
 public:
  JoinQuery(std::shared_ptr<const AgmsProjection> projection, double epsilon,
            double threshold_floor = 1.0);

  std::string name() const override { return "Q2-join"; }
  size_t dimension() const override { return 2 * projection_->dimension(); }
  void MapRecord(const StreamRecord& record,
                 std::vector<CellUpdate>* out) const override;
  void MapRecordBatch(const StreamRecord* base, const int64_t* positions,
                      int64_t n, std::vector<CellUpdate>* out,
                      std::vector<size_t>* ends) const override;
  double Evaluate(const RealVector& state) const override;
  ThresholdPair Thresholds(const RealVector& estimate) const override;
  std::unique_ptr<SafeFunction> MakeSafeFunction(
      const RealVector& estimate) const override;
  double epsilon() const override { return epsilon_; }

  const AgmsProjection& projection() const { return *projection_; }

 private:
  std::shared_ptr<const AgmsProjection> projection_;
  double epsilon_;
  double floor_;
};

/// F_p-norm query over an explicit frequency vector (paper §3): monitors
/// Q(S) = ‖S‖_p of the vector of CID frequencies folded into `dimension`
/// buckets. Two safe-function modes:
///  * kMonotoneUpper — insert-only streams: φ(x) = ‖x+E‖_p - T_hi (the
///    §3 analysis; the lower bound is implied by monotonicity);
///  * kTwoSided — p = 2 with deletions: the max composition of §3.0.3.
class FpNormQuery : public ContinuousQuery {
 public:
  enum class Mode { kMonotoneUpper, kTwoSided };

  FpNormQuery(size_t dimension, double p, double epsilon, Mode mode,
              double threshold_floor = 1.0);

  std::string name() const override;
  size_t dimension() const override { return dimension_; }
  void MapRecord(const StreamRecord& record,
                 std::vector<CellUpdate>* out) const override;
  double Evaluate(const RealVector& state) const override;
  ThresholdPair Thresholds(const RealVector& estimate) const override;
  std::unique_ptr<SafeFunction> MakeSafeFunction(
      const RealVector& estimate) const override;
  double epsilon() const override { return epsilon_; }

  double p() const { return p_; }

 private:
  size_t dimension_;
  double p_;
  double epsilon_;
  Mode mode_;
  double floor_;
};

/// Computes [Q - max(ε|Q|, floor), Q + max(ε|Q|, floor)].
ThresholdPair RelativeThresholds(double q, double epsilon, double floor);

}  // namespace fgm

#endif  // FGM_QUERY_QUERY_H_
