#include "query/variance.h"

#include <cmath>

#include "safezone/ball.h"
#include "safezone/variance_sz.h"
#include "util/check.h"
#include "util/hash.h"

namespace fgm {

double ResponseSizeOf(const StreamRecord& record) {
  double base;
  switch (record.type) {
    case FileType::kHtml:
      base = 6.0;
      break;
    case FileType::kImage:
      base = 14.0;
      break;
    case FileType::kAudio:
      base = 480.0;
      break;
    case FileType::kVideo:
      base = 2200.0;
      break;
    default:
      base = 9.0;
      break;
  }
  // Heavy-tailed per-client multiplier in [0.5, ~8), deterministic.
  const double u =
      static_cast<double>(MixHash64(record.cid) >> 11) * 0x1.0p-53;
  return base * (0.5 + 7.5 * u * u * u);
}

VarianceQuery::VarianceQuery(double epsilon, double threshold_floor,
                             double bootstrap_count)
    : epsilon_(epsilon),
      floor_(threshold_floor),
      bootstrap_count_(bootstrap_count) {
  FGM_CHECK_GT(epsilon, 0.0);
  FGM_CHECK_GT(threshold_floor, 0.0);
  FGM_CHECK_GT(bootstrap_count, 0.0);
}

void VarianceQuery::MapRecord(const StreamRecord& record,
                              std::vector<CellUpdate>* out) const {
  const double v = ResponseSizeOf(record);
  out->push_back(CellUpdate{0, record.weight});
  out->push_back(CellUpdate{1, record.weight * v});
  out->push_back(CellUpdate{2, record.weight * v * v});
}

double VarianceQuery::Evaluate(const RealVector& state) const {
  return VarianceOfState(state);
}

bool VarianceQuery::Bootstrapping(const RealVector& estimate) const {
  // The global state carries counts scaled by 1/k; the bootstrap level is
  // in the same (scaled) units, so callers pick it as items-per-site.
  return estimate[0] < bootstrap_count_;
}

ThresholdPair VarianceQuery::Thresholds(const RealVector& estimate) const {
  if (Bootstrapping(estimate)) {
    // No guarantee until the window holds enough data.
    return ThresholdPair{-1e300, 1e300};
  }
  return RelativeThresholds(Evaluate(estimate), epsilon_, floor_);
}

std::unique_ptr<SafeFunction> VarianceQuery::MakeSafeFunction(
    const RealVector& estimate) const {
  if (Bootstrapping(estimate)) {
    // Trivially safe for the unbounded thresholds; the small ball bounds
    // the drift so the coordinator refreshes E quickly and cheaply
    // (D = 3, so these early rounds cost a handful of words).
    return std::make_unique<BallSafeFunction>(
        RealVector(3), 2.0 * bootstrap_count_);
  }
  const ThresholdPair t = Thresholds(estimate);
  return MakeVarianceSafeFunction(estimate, t.lo, t.hi);
}

}  // namespace fgm
