// Heavy-hitter monitoring — the first canonical problem of distributed
// functional monitoring (paper §1).
//
// The state is the frequency histogram of client ids folded into
// `dimension` buckets. At each round the coordinator publishes the
// report set H = {buckets with E_i ≥ θ·N_E}; the FGM round then
// guarantees that H remains an ε-approximate heavy-hitter set of the
// LIVE stream: every reported bucket keeps frequency ≥ (θ-ε)·N(S) and
// every unreported one stays ≤ (θ+ε)·N(S). The guarantee is checked by
// the set semantics (ReportSet / SetIsValidFor), not a scalar interval.

#ifndef FGM_QUERY_HEAVY_HITTERS_H_
#define FGM_QUERY_HEAVY_HITTERS_H_

#include <memory>
#include <string>
#include <vector>

#include "query/query.h"

namespace fgm {

class HeavyHitterQuery : public ContinuousQuery {
 public:
  HeavyHitterQuery(size_t dimension, double theta, double epsilon,
                   double bootstrap_count = 32.0);

  std::string name() const override;
  size_t dimension() const override { return dimension_; }
  void MapRecord(const StreamRecord& record,
                 std::vector<CellUpdate>* out) const override;

  /// The number of heavy buckets (a scalar diagnostic; the real
  /// guarantee is the set one below).
  double Evaluate(const RealVector& state) const override;

  /// The set guarantee has no scalar interval form; the driver's generic
  /// check is disabled (±inf) and tests use SetIsValidFor instead.
  ThresholdPair Thresholds(const RealVector& estimate) const override;
  std::unique_ptr<SafeFunction> MakeSafeFunction(
      const RealVector& estimate) const override;
  double epsilon() const override { return epsilon_; }

  /// The report set derived from a reference state.
  std::vector<uint8_t> ReportSet(const RealVector& estimate) const;

  /// Whether `report` is a valid ε-approximate heavy-hitter set for
  /// `state`: reported buckets have freq ≥ (θ-ε)N, others ≤ (θ+ε)N.
  bool SetIsValidFor(const std::vector<uint8_t>& report,
                     const RealVector& state) const;

  double theta() const { return theta_; }

 private:
  bool Bootstrapping(const RealVector& estimate) const;

  size_t dimension_;
  double theta_;
  double epsilon_;
  double bootstrap_count_;
};

}  // namespace fgm

#endif  // FGM_QUERY_HEAVY_HITTERS_H_
