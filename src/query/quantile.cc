#include "query/quantile.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "query/variance.h"
#include "safezone/ball.h"
#include "safezone/compose.h"
#include "safezone/halfspace.h"
#include "util/check.h"

namespace fgm {

namespace {
constexpr double kMinValue = 0.5;  // lower edge of the first bucket
}  // namespace

QuantileQuery::QuantileQuery(int buckets, double phi, double epsilon,
                             double max_value, double bootstrap_count)
    : buckets_(buckets),
      phi_(phi),
      epsilon_(epsilon),
      max_value_(max_value),
      bootstrap_count_(bootstrap_count) {
  FGM_CHECK_GE(buckets, 2);
  FGM_CHECK(phi > 0.0 && phi < 1.0);
  FGM_CHECK(epsilon > 0.0 && epsilon < 1.0);
  FGM_CHECK_GT(max_value, kMinValue);
  log_ratio_ = std::log(max_value_ / kMinValue) / buckets_;
}

std::string QuantileQuery::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "quantile-p%02d",
                static_cast<int>(phi_ * 100 + 0.5));
  return buf;
}

int QuantileQuery::BucketOf(double value) const {
  if (value <= kMinValue) return 0;
  const int b = static_cast<int>(std::log(value / kMinValue) / log_ratio_);
  return std::min(b, buckets_ - 1);
}

double QuantileQuery::BucketValue(int bucket) const {
  return kMinValue * std::exp(log_ratio_ * (bucket + 1));
}

void QuantileQuery::MapRecord(const StreamRecord& record,
                              std::vector<CellUpdate>* out) const {
  const int bucket = BucketOf(ResponseSizeOf(record));
  out->push_back(
      CellUpdate{static_cast<size_t>(bucket), record.weight});
}

int QuantileQuery::QuantileBucket(const RealVector& state) const {
  double total = state.Sum();
  if (total <= 0.0) return 0;
  const double target = phi_ * total;
  double prefix = 0.0;
  for (int b = 0; b < buckets_; ++b) {
    prefix += state[static_cast<size_t>(b)];
    if (prefix >= target) return b;
  }
  return buckets_ - 1;
}

double QuantileQuery::Evaluate(const RealVector& state) const {
  return static_cast<double>(QuantileBucket(state));
}

bool QuantileQuery::Bootstrapping(const RealVector& estimate) const {
  return estimate.Sum() < bootstrap_count_;
}

ThresholdPair QuantileQuery::Thresholds(const RealVector& estimate) const {
  if (Bootstrapping(estimate)) return ThresholdPair{-1e300, 1e300};
  const double n = estimate.Sum();
  const double slack = epsilon_ * n;
  const double target = phi_ * n;
  // b_lo: the (phi-ε)-quantile of E; b_hi: the (phi+ε)-quantile (capped).
  int b_lo = buckets_ - 1, b_hi = buckets_ - 1;
  double prefix = 0.0;
  bool lo_found = false, hi_found = false;
  for (int b = 0; b < buckets_; ++b) {
    prefix += estimate[static_cast<size_t>(b)];
    if (!lo_found && prefix >= target - slack) {
      b_lo = b;
      lo_found = true;
    }
    if (!hi_found && prefix >= target + slack) {
      b_hi = b;
      hi_found = true;
      break;
    }
  }
  if (!hi_found) b_hi = buckets_ - 1;
  return ThresholdPair{static_cast<double>(b_lo),
                       static_cast<double>(b_hi)};
}

std::unique_ptr<SafeFunction> QuantileQuery::MakeSafeFunction(
    const RealVector& estimate) const {
  if (Bootstrapping(estimate)) {
    return std::make_unique<BallSafeFunction>(
        RealVector(dimension()), 2.0 * bootstrap_count_);
  }
  const ThresholdPair bounds = Thresholds(estimate);
  const int b_lo = static_cast<int>(bounds.lo);
  const int b_hi = static_cast<int>(bounds.hi);
  const double n = estimate.Sum();
  const double target = phi_ * n;
  std::vector<double> prefix(static_cast<size_t>(buckets_), 0.0);
  double acc = 0.0;
  for (int b = 0; b < buckets_; ++b) {
    acc += estimate[static_cast<size_t>(b)];
    prefix[static_cast<size_t>(b)] = acc;
  }

  // Tiny margin keeps the boundary case prefix == phi·N on the safe side.
  const double tiny = 1e-9 * (1.0 + n);
  std::vector<std::unique_ptr<SafeFunction>> children;

  // Lower side, quantile(S) ≥ b_lo ⇔ prefix_{b_lo-1}(S) - phi·N(S) < 0.
  // Trivial when b_lo == 0.
  if (b_lo >= 1) {
    RealVector v(dimension());
    for (int i = 0; i < buckets_; ++i) {
      v[static_cast<size_t>(i)] = (i < b_lo ? 1.0 : 0.0) - phi_;
    }
    const double c0 = prefix[static_cast<size_t>(b_lo - 1)] - target + tiny;
    FGM_CHECK_LT(c0, 0.0);
    RealVector normal = v;
    normal *= -1.0;
    children.push_back(std::make_unique<HalfspaceSafeFunction>(
        normal, c0 / v.Norm()));
  }
  // Upper side, quantile(S) ≤ b_hi ⇔ phi·N(S) - prefix_{b_hi}(S) ≤ 0.
  // Trivial when the reference prefix never clears target + slack (then
  // b_hi == buckets-1 and every state satisfies it vacuously) — detected
  // by a nonnegative c0.
  {
    RealVector v(dimension());
    for (int i = 0; i < buckets_; ++i) {
      v[static_cast<size_t>(i)] = phi_ - (i <= b_hi ? 1.0 : 0.0);
    }
    const double c0 = target - prefix[static_cast<size_t>(b_hi)] + tiny;
    if (c0 < 0.0 && v.Norm() > 0.0) {
      RealVector normal = v;
      normal *= -1.0;
      children.push_back(std::make_unique<HalfspaceSafeFunction>(
          normal, c0 / v.Norm()));
    }
  }

  if (children.empty()) {
    // Both sides degenerate (can only happen with pathological ε);
    // fall back to the bootstrap ball.
    return std::make_unique<BallSafeFunction>(
        RealVector(dimension()), 2.0 * bootstrap_count_);
  }
  if (children.size() == 1) return std::move(children[0]);
  return std::make_unique<MaxComposition>(std::move(children));
}

}  // namespace fgm
