#include "query/multi.h"

#include "safezone/compose.h"
#include "safezone/lifted.h"
#include "util/check.h"

namespace fgm {

MultiQuery::MultiQuery(std::vector<std::unique_ptr<ContinuousQuery>> members)
    : members_(std::move(members)) {
  FGM_CHECK(!members_.empty());
  size_t offset = 0;
  for (const auto& member : members_) {
    FGM_CHECK(member != nullptr);
    offsets_.push_back(offset);
    offset += member->dimension();
  }
  total_dim_ = offset;
}

std::string MultiQuery::name() const {
  std::string result = "multi[";
  for (size_t i = 0; i < members_.size(); ++i) {
    if (i) result += "+";
    result += members_[i]->name();
  }
  return result + "]";
}

void MultiQuery::MapRecord(const StreamRecord& record,
                           std::vector<CellUpdate>* out) const {
  for (size_t m = 0; m < members_.size(); ++m) {
    const size_t before = out->size();
    members_[m]->MapRecord(record, out);
    for (size_t j = before; j < out->size(); ++j) {
      (*out)[j].index += offsets_[m];
    }
  }
}

RealVector MultiQuery::MemberSlice(size_t member,
                                   const RealVector& state) const {
  FGM_CHECK_LT(member, members_.size());
  FGM_CHECK_EQ(state.dim(), total_dim_);
  RealVector slice(members_[member]->dimension());
  for (size_t i = 0; i < slice.dim(); ++i) {
    slice[i] = state[offsets_[member] + i];
  }
  return slice;
}

double MultiQuery::Evaluate(const RealVector& state) const {
  return EvaluateMember(0, state);
}

double MultiQuery::EvaluateMember(size_t member,
                                  const RealVector& state) const {
  return members_[member]->Evaluate(MemberSlice(member, state));
}

ThresholdPair MultiQuery::Thresholds(const RealVector& estimate) const {
  return MemberThresholds(0, estimate);
}

ThresholdPair MultiQuery::MemberThresholds(size_t member,
                                           const RealVector& estimate) const {
  return members_[member]->Thresholds(MemberSlice(member, estimate));
}

std::unique_ptr<SafeFunction> MultiQuery::MakeSafeFunction(
    const RealVector& estimate) const {
  std::vector<std::unique_ptr<SafeFunction>> lifted;
  lifted.reserve(members_.size());
  for (size_t m = 0; m < members_.size(); ++m) {
    lifted.push_back(std::make_unique<LiftedSafeFunction>(
        members_[m]->MakeSafeFunction(MemberSlice(m, estimate)), offsets_[m],
        total_dim_));
  }
  if (lifted.size() == 1) return std::move(lifted[0]);
  return std::make_unique<MaxComposition>(std::move(lifted));
}

double MultiQuery::epsilon() const {
  double eps = members_[0]->epsilon();
  for (const auto& member : members_) {
    eps = std::min(eps, member->epsilon());
  }
  return eps;
}

}  // namespace fgm
