// One-shot threshold queries (paper §2.1): the coordinator monitors for
// the event Q(S) ≤ T with a fixed threshold T, rather than tracking a
// close estimate. The admissible region A = {x : Q(x) ≤ T} is fixed for
// the whole run; FGM keeps monitoring rounds against it until the
// estimate crosses the alarm level (1-ε)·T, after which the alarm is
// latched (checked via AlarmRaised on the estimate).

#ifndef FGM_QUERY_ONESHOT_H_
#define FGM_QUERY_ONESHOT_H_

#include <memory>
#include <string>

#include "query/query.h"
#include "safezone/norm_threshold.h"

namespace fgm {

/// One-shot F_p-norm threshold: monitor ‖S‖_p ≤ T over an explicit
/// frequency vector folded into `dimension` buckets (the §3 one-shot
/// setting; Thm 3.2 bounds its rounds by O(k^{p-1} log 1/ε)).
class OneShotFpQuery : public ContinuousQuery {
 public:
  OneShotFpQuery(size_t dimension, double p, double threshold,
                 double epsilon);

  std::string name() const override { return "Fp-oneshot"; }
  size_t dimension() const override { return dimension_; }
  void MapRecord(const StreamRecord& record,
                 std::vector<CellUpdate>* out) const override;
  double Evaluate(const RealVector& state) const override;
  ThresholdPair Thresholds(const RealVector& estimate) const override;
  std::unique_ptr<SafeFunction> MakeSafeFunction(
      const RealVector& estimate) const override;
  double epsilon() const override { return epsilon_; }

  double threshold() const { return threshold_; }

  /// True once the estimate has reached the alarm level (1-ε)·T.
  bool AlarmRaised(double estimate) const {
    return estimate >= (1.0 - epsilon_) * threshold_;
  }

 private:
  size_t dimension_;
  double p_;
  double threshold_;
  double epsilon_;
};

}  // namespace fgm

#endif  // FGM_QUERY_ONESHOT_H_
