#include "query/heavy_hitters.h"

#include <cmath>

#include "safezone/ball.h"
#include "safezone/heavy_hitters_sz.h"
#include "util/check.h"

namespace fgm {

HeavyHitterQuery::HeavyHitterQuery(size_t dimension, double theta,
                                   double epsilon, double bootstrap_count)
    : dimension_(dimension),
      theta_(theta),
      epsilon_(epsilon),
      bootstrap_count_(bootstrap_count) {
  FGM_CHECK_GE(dimension, 2u);
  FGM_CHECK(theta > 0.0 && theta < 1.0);
  FGM_CHECK(epsilon > 0.0 && epsilon < theta);
  FGM_CHECK_GT(bootstrap_count, 0.0);
}

std::string HeavyHitterQuery::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "heavy-hitters-t%02d",
                static_cast<int>(theta_ * 100 + 0.5));
  return buf;
}

void HeavyHitterQuery::MapRecord(const StreamRecord& record,
                                 std::vector<CellUpdate>* out) const {
  out->push_back(CellUpdate{record.cid % dimension_, record.weight});
}

double HeavyHitterQuery::Evaluate(const RealVector& state) const {
  const std::vector<uint8_t> report = ReportSet(state);
  double count = 0.0;
  for (uint8_t h : report) count += h;
  return count;
}

ThresholdPair HeavyHitterQuery::Thresholds(const RealVector&) const {
  // The guarantee is on the report SET, not on a scalar.
  return ThresholdPair{-1e300, 1e300};
}

bool HeavyHitterQuery::Bootstrapping(const RealVector& estimate) const {
  return estimate.Sum() < bootstrap_count_;
}

std::vector<uint8_t> HeavyHitterQuery::ReportSet(
    const RealVector& estimate) const {
  std::vector<uint8_t> report(dimension_, 0);
  const double n = estimate.Sum();
  if (n <= 0.0) return report;
  const double cut = theta_ * n;
  for (size_t i = 0; i < dimension_; ++i) {
    report[i] = estimate[i] >= cut ? 1 : 0;
  }
  return report;
}

bool HeavyHitterQuery::SetIsValidFor(const std::vector<uint8_t>& report,
                                     const RealVector& state) const {
  FGM_CHECK_EQ(report.size(), dimension_);
  const double n = state.Sum();
  if (n <= 0.0) return true;
  const double tolerance = 1e-9 * n;
  for (size_t i = 0; i < dimension_; ++i) {
    if (report[i]) {
      if (state[i] < (theta_ - epsilon_) * n - tolerance) return false;
    } else {
      if (state[i] > (theta_ + epsilon_) * n + tolerance) return false;
    }
  }
  return true;
}

std::unique_ptr<SafeFunction> HeavyHitterQuery::MakeSafeFunction(
    const RealVector& estimate) const {
  if (Bootstrapping(estimate)) {
    return std::make_unique<BallSafeFunction>(RealVector(dimension_),
                                              2.0 * bootstrap_count_);
  }
  return std::make_unique<HeavyHitterSafeFunction>(estimate, theta_,
                                                   epsilon_);
}

}  // namespace fgm
