#include "query/oneshot.h"

#include "util/check.h"

namespace fgm {

OneShotFpQuery::OneShotFpQuery(size_t dimension, double p, double threshold,
                               double epsilon)
    : dimension_(dimension),
      p_(p),
      threshold_(threshold),
      epsilon_(epsilon) {
  FGM_CHECK_GE(dimension, 1u);
  FGM_CHECK_GE(p, 1.0);
  FGM_CHECK_GT(threshold, 0.0);
  FGM_CHECK(epsilon > 0.0 && epsilon < 1.0);
}

void OneShotFpQuery::MapRecord(const StreamRecord& record,
                               std::vector<CellUpdate>* out) const {
  out->push_back(CellUpdate{record.cid % dimension_, record.weight});
}

double OneShotFpQuery::Evaluate(const RealVector& state) const {
  return state.LpNorm(p_);
}

ThresholdPair OneShotFpQuery::Thresholds(const RealVector&) const {
  // The one-shot guarantee is one-sided: while quiescent, Q(S) ≤ T.
  return ThresholdPair{-1e300, threshold_};
}

std::unique_ptr<SafeFunction> OneShotFpQuery::MakeSafeFunction(
    const RealVector& estimate) const {
  return std::make_unique<LpNormThreshold>(estimate, p_, threshold_);
}

}  // namespace fgm
