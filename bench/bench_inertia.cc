// §4.1.3 "statistical inertia" claim: when the global state moves with
// roughly constant velocity, the FGM rebalancing protocol achieves round
// durations at least 1/2 of the ideal maximum (the ideal being the number
// of updates after which the global drift itself leaves the safe zone, so
// that *no* protocol could extend the round further).
//
// For every round we run an oracle alongside the protocol: starting from
// the round's E, the oracle feeds the very same global updates into a
// single safe-zone evaluator (drift scaled by 1/k) until φ crosses 0 —
// that is the ideal round budget τ*. The table reports the mean ratio of
// the actual round length to τ*, with and without rebalancing, and under
// skewed site rates.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/fgm_protocol.h"
#include "query/query.h"
#include "stream/drift_stream.h"
#include "util/stats.h"
#include "util/table.h"

namespace fgm {
namespace bench {
namespace {

struct InertiaResult {
  double mean_ratio;
  double min_ratio;
  int64_t rounds;
};

// An oracle outlives its round: it keeps absorbing the global stream
// until its safe function really exits, giving the true ideal budget τ*
// even when the protocol's round ended earlier.
struct Oracle {
  std::unique_ptr<SafeFunction> fn;
  std::unique_ptr<DriftEvaluator> eval;
  int64_t ideal_updates = 0;
  int64_t round_updates = -1;  // set once the round it tracks has ended
};

InertiaResult Measure(const std::vector<StreamRecord>& trace, int sites,
                      double epsilon, bool rebalance) {
  FpNormQuery query(256, 2.0, epsilon, FpNormQuery::Mode::kTwoSided);
  FgmConfig config;
  config.rebalance = rebalance;
  FgmProtocol protocol(&query, sites, config);

  std::vector<Oracle> oracles;
  auto new_oracle = [&]() {
    Oracle o;
    o.fn = query.MakeSafeFunction(protocol.GlobalEstimate());
    o.eval = o.fn->MakeEvaluator();
    oracles.push_back(std::move(o));
  };
  new_oracle();

  int64_t round_updates = 0;
  int64_t rounds_seen = protocol.rounds();
  RunningStats ratios;
  std::vector<CellUpdate> deltas;
  const double inv_k = 1.0 / static_cast<double>(sites);
  // Ignore the cold-start phase: only rounds with a decent ideal budget
  // say anything about steady-state behaviour.
  constexpr int64_t kMinIdeal = 100;

  for (const StreamRecord& rec : trace) {
    protocol.ProcessRecord(rec);
    ++round_updates;
    deltas.clear();
    query.MapRecord(rec, &deltas);
    for (size_t j = 0; j < oracles.size();) {
      Oracle& o = oracles[j];
      for (const CellUpdate& u : deltas) {
        o.eval->ApplyDelta(u.index, inv_k * u.delta);
      }
      if (o.eval->Value() < 0.0) {
        ++o.ideal_updates;
        ++j;
        continue;
      }
      // The global drift exited this oracle's zone: its budget is final.
      if (o.round_updates >= 0) {
        if (o.ideal_updates >= kMinIdeal) {
          ratios.Add(static_cast<double>(o.round_updates) /
                     static_cast<double>(o.ideal_updates));
        }
        oracles.erase(oracles.begin() + static_cast<long>(j));
      } else {
        // Round still running; it cannot outlast the exit by more than
        // the quantization slack — score it when it ends.
        ++j;
      }
    }
    if (protocol.rounds() != rounds_seen) {
      rounds_seen = protocol.rounds();
      // Attach the finished round's length to its (oldest unattached)
      // oracle; score immediately if the oracle already exited.
      for (size_t j = 0; j < oracles.size(); ++j) {
        if (oracles[j].round_updates < 0) {
          Oracle& o = oracles[j];
          o.round_updates = round_updates;
          if (o.eval->Value() >= 0.0) {
            if (o.ideal_updates >= kMinIdeal) {
              ratios.Add(static_cast<double>(o.round_updates) /
                         static_cast<double>(o.ideal_updates));
            }
            oracles.erase(oracles.begin() + static_cast<long>(j));
          }
          break;
        }
      }
      round_updates = 0;
      new_oracle();
    }
  }
  return InertiaResult{ratios.mean(), ratios.min(), ratios.count()};
}

void Main() {
  JsonReport::Get().Init("inertia");
  std::printf("§4.1.3 reproduction: round duration vs the ideal maximum "
              "under constant-velocity streams\n");
  TablePrinter table({"workload", "variant", "mean round/ideal",
                      "min round/ideal", "rounds scored"});
  struct Workload {
    const char* label;
    double alpha;
    uint64_t rotation;
    double cancel;
  };
  // Rotation > 0 makes the local drift directions diverge, which is what
  // ends basic-FGM rounds early; the global velocity stays constant.
  const Workload workloads[] = {
      {"parallel local drifts", 0.0, 0, 0.0},
      {"divergent local drifts", 0.0, 32, 0.0},
      {"half-cancelling drifts", 0.0, 32, 0.45},
      {"cancelling + power-law rates", 1.2, 32, 0.45},
  };
  for (const Workload& w : workloads) {
    DriftStreamConfig config;
    config.sites = 8;
    config.total_updates = 400000;
    config.site_power_alpha = w.alpha;
    config.site_key_rotation = w.rotation;
    config.cancel_fraction = w.cancel;
    const auto trace = GenerateDriftTrace(config);
    for (const bool rebalance : {false, true}) {
      const InertiaResult r = Measure(trace, config.sites, 0.05, rebalance);
      table.AddRow({w.label, rebalance ? "FGM (rebalancing)" : "FGM-basic",
                    Fmt("%.3f", r.mean_ratio), Fmt("%.3f", r.min_ratio),
                    TablePrinter::Cell(r.rounds)});
      JsonReport::Get().AddEntry(
          std::string(w.label) + (rebalance ? "/fgm" : "/fgm-basic"),
          {{"mean_ratio", r.mean_ratio},
           {"min_ratio", r.min_ratio},
           {"rounds", static_cast<double>(r.rounds)}});
    }
  }
  table.Print();
  std::printf("The paper's claim: with rebalancing the mean ratio is at "
              "least ~0.5 (the protocol realizes at least half of any "
              "achievable round length).\n");
}

}  // namespace
}  // namespace bench
}  // namespace fgm

int main() {
  fgm::bench::Main();
  return 0;
}
