// Figure 1: quiescent regions in configuration space for A = [-1, 1] ⊆ R
// and k = 2 sites.
//
// The figure contrasts:
//   * C      — the set of safe configurations {|x1 + x2|/2 ≤ 1};
//   * Q_p    — the FGM quiescent region for φ(x) = |x|^p - 1, p = 1, 2, 4;
//   * Q_GM   — the GM quiescent region [-1,1]² (both sites inside A).
// The paper's point: Q_GM ⊆ Q_p ⊆ Q_1 ⊆ C, with the level-minimal p = 1
// function maximizing the quiescent region (Thm 2.5). We measure the
// areas by Monte-Carlo over [-3,3]² and verify the inclusions pointwise.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "util/rng.h"
#include "util/table.h"

namespace fgm {
namespace bench {
namespace {

double PhiP(double x, double p) { return std::pow(std::fabs(x), p) - 1.0; }

void Main() {
  JsonReport::Get().Init("fig1_quiescent");
  std::printf("Figure 1 reproduction: quiescent regions for A=[-1,1], k=2\n");
  Xoshiro256ss rng(20190326);
  const int64_t samples = 4000000;
  const double span = 6.0;  // [-3, 3]^2
  const double cell = span * span;

  int64_t in_c = 0, in_gm = 0;
  int64_t in_qp[3] = {0, 0, 0};
  const double ps[3] = {1.0, 2.0, 4.0};
  int64_t inclusion_violations = 0;

  for (int64_t s = 0; s < samples; ++s) {
    const double x1 = (rng.NextDouble() - 0.5) * span;
    const double x2 = (rng.NextDouble() - 0.5) * span;
    const bool c = std::fabs(0.5 * (x1 + x2)) <= 1.0;
    const bool gm = std::fabs(x1) <= 1.0 && std::fabs(x2) <= 1.0;
    bool qp[3];
    for (int i = 0; i < 3; ++i) {
      qp[i] = PhiP(x1, ps[i]) + PhiP(x2, ps[i]) <= 0.0;
    }
    in_c += c;
    in_gm += gm;
    for (int i = 0; i < 3; ++i) in_qp[i] += qp[i];
    // Inclusions: Q_GM ⊆ Q_4 ⊆ Q_2 ⊆ Q_1 ⊆ C.
    if (gm && !qp[2]) ++inclusion_violations;
    if (qp[2] && !qp[1]) ++inclusion_violations;
    if (qp[1] && !qp[0]) ++inclusion_violations;
    if (qp[0] && !c) ++inclusion_violations;
  }

  auto area = [&](int64_t count) {
    return cell * static_cast<double>(count) / static_cast<double>(samples);
  };

  TablePrinter table({"region", "area", "fraction of C"});
  const double area_c = area(in_c);
  table.AddRow({"C (safe configurations)", TablePrinter::Cell(area_c),
                "1.000"});
  const char* names[3] = {"Q_{|x|-1}   (FGM, p=1)", "Q_{|x|^2-1} (FGM, p=2)",
                          "Q_{|x|^4-1} (FGM, p=4)"};
  for (int i = 0; i < 3; ++i) {
    table.AddRow({names[i], TablePrinter::Cell(area(in_qp[i])),
                  Fmt("%.3f", area(in_qp[i]) / area_c)});
  }
  table.AddRow({"Q_GM (classic GM)", TablePrinter::Cell(area(in_gm)),
                Fmt("%.3f", area(in_gm) / area_c)});
  table.Print();
  JsonReport::Get().AddScalar("area_C", area_c);
  JsonReport::Get().AddScalar("area_Q_p1", area(in_qp[0]));
  JsonReport::Get().AddScalar("area_Q_p2", area(in_qp[1]));
  JsonReport::Get().AddScalar("area_Q_p4", area(in_qp[2]));
  JsonReport::Get().AddScalar("area_Q_GM", area(in_gm));
  JsonReport::Get().AddScalar("inclusion_violations",
                              static_cast<double>(inclusion_violations));
  std::printf("inclusion violations (must be 0): %lld\n",
              static_cast<long long>(inclusion_violations));
  std::printf("Paper's claim: the level-minimal p=1 function dominates; "
              "as p grows the FGM advantage over GM shrinks but never "
              "inverts.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fgm

int main() {
  fgm::bench::Main();
  return 0;
}
