// Micro benchmarks (google-benchmark): throughput of the data-path
// building blocks — sketch updates, incremental safe-function evaluation,
// and end-to-end protocol record processing. Every google-benchmark
// result is also exported as BENCH_micro.json (per-benchmark ns/op), and
// main() then runs the serial-vs-parallel speedup grid and exports it as
// BENCH_parallel_speedup.json (see bench_common.h / FGM_BENCH_OUT).
// tools/bench_gate diffs either report against a committed baseline.

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/fgm_protocol.h"
#include "driver/runner.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "query/query.h"
#include "safezone/join_sz.h"
#include "safezone/selfjoin_sz.h"
#include "sketch/fast_agms.h"
#include "stream/worldcup.h"
#include "util/rng.h"

namespace fgm {
namespace {

std::shared_ptr<const AgmsProjection> Projection(int d, int w) {
  return std::make_shared<const AgmsProjection>(d, w, 42);
}

RealVector WarmSketch(const AgmsProjection& proj, int updates, int factor) {
  Xoshiro256ss rng(7);
  RealVector state(static_cast<size_t>(factor) * proj.dimension());
  std::vector<CellUpdate> deltas;
  for (int i = 0; i < updates; ++i) {
    deltas.clear();
    proj.Map(rng.NextBounded(100000), 1.0, &deltas);
    const size_t offset =
        (factor == 2 && (i & 1)) ? proj.dimension() : 0;
    for (const auto& u : deltas) state[u.index + offset] += u.delta;
  }
  return state;
}

void BM_SketchUpdate(benchmark::State& state) {
  auto proj = Projection(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(1)));
  FastAgms sketch(proj);
  Xoshiro256ss rng(1);
  for (auto _ : state) {
    sketch.Update(rng.NextBounded(1000000), 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SketchUpdate)->Args({5, 500})->Args({7, 1000})->Args({7, 5000});

// Row-major batched ingestion (FastAgms::UpdateBatch); bit-identical to
// the per-record loop above, measured per update for the same geometry.
void BM_SketchUpdateBatch(benchmark::State& state) {
  auto proj = Projection(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(1)));
  FastAgms sketch(proj);
  Xoshiro256ss rng(1);
  constexpr size_t kBatch = 1024;
  std::vector<uint64_t> keys(kBatch);
  std::vector<double> weights(kBatch, 1.0);
  for (auto& key : keys) key = rng.NextBounded(1000000);
  for (auto _ : state) {
    sketch.UpdateBatch(keys.data(), weights.data(), kBatch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBatch));
}
BENCHMARK(BM_SketchUpdateBatch)
    ->Args({5, 500})
    ->Args({7, 1000})
    ->Args({7, 5000});

void BM_SelfJoinEstimate(benchmark::State& state) {
  auto proj = Projection(7, static_cast<int>(state.range(0)));
  const RealVector s = WarmSketch(*proj, 50000, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelfJoinEstimate(*proj, s));
  }
}
BENCHMARK(BM_SelfJoinEstimate)->Arg(1000)->Arg(5000);

void BM_SelfJoinEvaluatorUpdate(benchmark::State& state) {
  auto proj = Projection(5, static_cast<int>(state.range(0)));
  const RealVector e = WarmSketch(*proj, 50000, 1);
  const double q = SelfJoinEstimate(*proj, e);
  SelfJoinSafeFunction fn(proj, e, 0.9 * q, 1.1 * q);
  auto eval = fn.MakeEvaluator();
  Xoshiro256ss rng(3);
  std::vector<CellUpdate> deltas;
  for (auto _ : state) {
    deltas.clear();
    proj->Map(rng.NextBounded(1000000), 1.0, &deltas);
    for (const auto& u : deltas) eval->ApplyDelta(u.index, u.delta);
    benchmark::DoNotOptimize(eval->Value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelfJoinEvaluatorUpdate)->Arg(500)->Arg(5000);

void BM_JoinEvaluatorUpdate(benchmark::State& state) {
  auto proj = Projection(5, static_cast<int>(state.range(0)));
  const RealVector e = WarmSketch(*proj, 50000, 2);
  const double q = JoinEstimateConcatenated(*proj, e);
  const double margin = std::max(0.2 * std::fabs(q), 1.0);
  JoinSafeFunction fn(proj, e, q - margin, q + margin);
  auto eval = fn.MakeEvaluator();
  Xoshiro256ss rng(5);
  std::vector<CellUpdate> deltas;
  for (auto _ : state) {
    deltas.clear();
    proj->Map(rng.NextBounded(1000000), 1.0, &deltas);
    for (const auto& u : deltas) eval->ApplyDelta(u.index, u.delta);
    benchmark::DoNotOptimize(eval->Value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JoinEvaluatorUpdate)->Arg(500)->Arg(5000);

void BM_FgmProcessRecord(benchmark::State& state) {
  auto proj = Projection(5, 500);
  SelfJoinQuery query(proj, 0.1);
  FgmConfig config;
  const int k = static_cast<int>(state.range(0));
  FgmProtocol protocol(&query, k, config);
  Xoshiro256ss rng(9);
  StreamRecord rec;
  for (auto _ : state) {
    rec.site = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(k)));
    rec.cid = rng.NextBounded(1000000);
    protocol.ProcessRecord(rec);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FgmProcessRecord)->Arg(4)->Arg(27);

// The same loop with observability enabled: a counting trace sink, a
// metrics registry and a run-health time series installed through
// FgmConfig. BM_FgmProcessRecord above runs with all three null, so its
// hooks cost one pointer test each; the delta between the two benchmarks
// is the full price of enabled observability (event construction, virtual
// dispatch, timer reads, round-boundary sampling).
void BM_FgmProcessRecordTraced(benchmark::State& state) {
  auto proj = Projection(5, 500);
  SelfJoinQuery query(proj, 0.1);
  CountingTraceSink sink;
  MetricsRegistry metrics;
  TimeSeries timeseries(1024);
  FgmConfig config;
  config.trace = &sink;
  config.metrics = &metrics;
  config.timeseries = &timeseries;
  const int k = static_cast<int>(state.range(0));
  FgmProtocol protocol(&query, k, config);
  Xoshiro256ss rng(9);
  StreamRecord rec;
  for (auto _ : state) {
    rec.site = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(k)));
    rec.cid = rng.NextBounded(1000000);
    protocol.ProcessRecord(rec);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FgmProcessRecordTraced)->Arg(4)->Arg(27);

// The record loop with ONLY the causal span sink (obs/span.h) installed.
// BM_FgmProcessRecord runs the same hooks against a null SpanSink* (one
// pointer test each), so the delta prices enabled span collection —
// round/subround scopes plus one point span per wire message.
void BM_FgmProcessRecordSpans(benchmark::State& state) {
  auto proj = Projection(5, 500);
  SelfJoinQuery query(proj, 0.1);
  SpanSink spans;
  FgmConfig config;
  config.spans = &spans;
  const int k = static_cast<int>(state.range(0));
  FgmProtocol protocol(&query, k, config);
  Xoshiro256ss rng(9);
  StreamRecord rec;
  for (auto _ : state) {
    rec.site = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(k)));
    rec.cid = rng.NextBounded(1000000);
    protocol.ProcessRecord(rec);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FgmProcessRecordSpans)->Arg(4)->Arg(27);

// Serial vs. parallel end-to-end runs over the k × threads grid, plus a
// fast_merge point at the top thread count. Written to
// BENCH_parallel_speedup.json; wall-clock speedups depend on the host
// core count (a 1-core machine reports ≈1.0 or below by construction,
// which is why the report carries a `host_cores` scalar — CI applies its
// speedup minimums only on multi-core runners), while the default-mode
// traffic equality is checked unconditionally. fast_merge runs are
// deliberately excluded from the equality check: they trade bit-identity
// for commit throughput (see exec/parallel_runner.h).
void RunParallelSpeedupGrid() {
  bench::JsonReport::Get().Init("parallel_speedup");
  const unsigned cores = std::thread::hardware_concurrency();
  bench::JsonReport::Get().AddScalar("host_cores",
                                     static_cast<double>(cores));
  std::printf("\nparallel speedup grid (Q1 self-join, 200k updates, %u "
              "host cores):\n",
              cores);
  for (int k : {8, 32}) {
    WorldCupConfig wc;
    wc.sites = k;
    wc.total_updates = 200000;
    const std::vector<StreamRecord> trace = GenerateWorldCupTrace(wc);
    double serial_wall = 0.0;
    int64_t serial_words = 0;
    const auto one_run = [&](int threads, bool fast_merge) {
      RunConfig config;
      config.query = QueryKind::kSelfJoin;
      config.protocol = ProtocolKind::kFgm;
      config.sites = k;
      config.depth = 5;
      config.width = 300;
      config.threads = threads;
      config.fast_merge = fast_merge;
      const RunResult r = Run(config, trace);
      if (threads == 1) {
        serial_wall = r.wall_seconds;
        serial_words = r.traffic.total_words();
      } else if (!fast_merge && r.traffic.total_words() != serial_words) {
        std::fprintf(stderr,
                     "parallel run diverged from serial traffic "
                     "(k=%d threads=%d)\n",
                     k, threads);
        std::exit(1);
      }
      const double speedup =
          r.wall_seconds > 0.0 ? serial_wall / r.wall_seconds : 0.0;
      const std::string label = "k=" + std::to_string(k) +
                                ",threads=" + std::to_string(threads) +
                                (fast_merge ? ",fast_merge" : "");
      std::printf("  k=%-3d threads=%d%s wall=%.3fs speedup=%.2fx\n", k,
                  threads, fast_merge ? " fast_merge" : "", r.wall_seconds,
                  speedup);
      bench::JsonReport::Get().AddEntry(
          label, {{"k", static_cast<double>(k)},
                  {"threads", static_cast<double>(threads)},
                  {"fast_merge", fast_merge ? 1.0 : 0.0},
                  {"wall_seconds", r.wall_seconds},
                  {"speedup", speedup},
                  {"windows", static_cast<double>(r.parallel_windows)},
                  {"barriers", static_cast<double>(r.parallel_barriers)},
                  {"replayed", static_cast<double>(r.replayed_records)},
                  {"wasted", static_cast<double>(r.wasted_records)},
                  {"soft_commits", static_cast<double>(r.soft_commits)}});
    };
    for (int threads : {1, 2, 4, 8}) one_run(threads, false);
    one_run(8, true);
  }
}

// Console reporter that additionally lands every per-iteration result in
// a standalone JsonReport (BENCH_micro.json): one run per benchmark with
// ns_per_op / cpu_ns_per_op / items_per_second. All three are time-like,
// so bench_gate skips them unless given --time_tol; the gate still fails
// structurally when a benchmark disappears from the suite.
class MicroJsonReporter : public benchmark::ConsoleReporter {
 public:
  explicit MicroJsonReporter(bench::JsonReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      double items = 0.0;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) items = it->second;
      const double ns = run.GetAdjustedRealTime();
      ns_per_op_[run.benchmark_name()] = ns;
      report_->AddEntry(run.benchmark_name(),
                        {{"ns_per_op", ns},
                         {"cpu_ns_per_op", run.GetAdjustedCPUTime()},
                         {"items_per_second", items}});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  double NsPerOp(const std::string& name) const {
    const auto it = ns_per_op_.find(name);
    return it != ns_per_op_.end() ? it->second : 0.0;
  }

 private:
  bench::JsonReport* report_;
  std::map<std::string, double> ns_per_op_;
};

}  // namespace
}  // namespace fgm

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  fgm::bench::JsonReport micro;
  micro.Init("micro");
  fgm::MicroJsonReporter reporter(&micro);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  // Disabled-path sanity number: the observability hooks' cost when every
  // sink is null, relative to the same loop with them installed.
  const double off = reporter.NsPerOp("BM_FgmProcessRecord/27");
  const double on = reporter.NsPerOp("BM_FgmProcessRecordTraced/27");
  if (off > 0.0 && on > 0.0) {
    micro.AddScalar("obs_enabled_overhead_ns_per_op", on - off);
    std::printf("observability overhead (k=27): %.1f ns/op disabled-path "
                "baseline, %.1f ns/op enabled (+%.1f)\n",
                off, on, on - off);
  }
  const double spans_on = reporter.NsPerOp("BM_FgmProcessRecordSpans/27");
  if (off > 0.0 && spans_on > 0.0) {
    micro.AddScalar("spans_enabled_overhead_ns_per_op", spans_on - off);
    std::printf("span overhead (k=27): %.1f ns/op spans enabled (+%.1f over "
                "the disabled path)\n",
                spans_on, spans_on - off);
  }
  micro.Write();
  fgm::RunParallelSpeedupGrid();
  return 0;
}
