// Figure 6: the effect of skew. The skewed dataset reroutes the 8 largest
// sites' streams to one hot site (7 sites go empty); the global stream is
// identical to the real dataset. Costs over ε ∈ [0.02, 0.1] at k = 27,
// D = 7000, turnstile TW = 4h, for queries Q1 and Q2.
//
// Expected shape (paper): GM degrades under skew (frequent violations at
// the hot site); FGM is essentially unaffected — its ψ depends only on
// the drift sum, so the round structure is identical and the empty sites
// stop paying downstream costs; FGM/O benefits further by shipping cheap
// functions to the empty sites.

#include <cstdio>

#include "bench_common.h"

namespace fgm {
namespace bench {
namespace {

void RunQuery(const std::vector<StreamRecord>& real,
              const std::vector<StreamRecord>& skewed,
              const BenchScale& scale, QueryKind query, double paper_d,
              const char* title) {
  PrintBanner(title);
  TablePrinter table(
      {"eps", "protocol", "dataset", "comm.cost", "upstream%", "rounds"});
  for (const double eps : {0.02, 0.04, 0.06, 0.08, 0.10}) {
    for (const ProtocolKind protocol :
         {ProtocolKind::kGm, ProtocolKind::kFgm, ProtocolKind::kFgmOpt}) {
      for (const bool use_skew : {false, true}) {
        RunConfig config = BaseConfig(query, kPaperSites, paper_d, eps,
                                      /*window=*/4.0 * 3600.0, scale);
        config.protocol = protocol;
        const RunResult r = ::fgm::Run(config, use_skew ? skewed : real);
        JsonReport::Get().AddRun(
            Fmt("%.2f", eps) + (use_skew ? "/skew" : "/real"), r);
        table.AddRow({Fmt("%.2f", eps), r.protocol_name,
                      use_skew ? "skew" : "real", Fmt("%.4f", r.comm_cost),
                      Fmt("%.1f%%", 100.0 * r.upstream_fraction),
                      TablePrinter::Cell(r.rounds)});
      }
    }
  }
  table.Print();
}

void Main() {
  JsonReport::Get().Init("fig6_skew");
  const BenchScale scale = DefaultScale();
  std::printf("Figure 6 reproduction: skew, k=27, paper D=7000, TW=4h, "
              "%lld updates\n",
              static_cast<long long>(scale.updates));
  const auto real = PaperTrace(scale);
  const auto skewed = MakeSkewedTrace(real, kPaperSites, /*group_size=*/8);
  RunQuery(real, skewed, scale, QueryKind::kSelfJoin, 7000.0,
           "Fig 6 (top): Q1 (self-join), real vs skewed");
  RunQuery(real, skewed, scale, QueryKind::kJoin, 3500.0,
           "Fig 6 (bottom): Q2 (join), real vs skewed");
}

}  // namespace
}  // namespace bench
}  // namespace fgm

int main() {
  fgm::bench::Main();
  return 0;
}
