// Ablation study of the FGM design choices called out in DESIGN.md:
//
//  A1 — rebalancing (§4.1): basic FGM vs FGM, plus the min-λ cutoff;
//  A2 — the ψ-quantization accuracy ε_ψ (§2.4/§2.5.1);
//  A3 — the rebalance economy rule (rebalance_min_words_per_site), our
//       conservative flush policy;
//  A4 — the GM slack margin used when accepting a partial rebalance;
//  A5 — the FGM/O optimizer under the typical and the adverse regime.
//
// Each table holds the workload fixed and varies exactly one knob.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/fgm_protocol.h"
#include "gm/gm_protocol.h"
#include "stream/window.h"

namespace fgm {
namespace bench {
namespace {

struct AblationResult {
  double comm_cost;
  double upstream_fraction;
  int64_t rounds;
  int64_t subrounds;
  int64_t rebalances;
};

AblationResult RunFgm(const std::vector<StreamRecord>& trace,
                      const RunConfig& rc, const FgmConfig& config) {
  auto query = MakeQuery(rc);
  FgmProtocol protocol(query.get(), rc.sites, config);
  SlidingWindowStream events(&trace, rc.window_seconds);
  int64_t n = 0;
  while (const StreamRecord* rec = events.Next()) {
    protocol.ProcessRecord(*rec);
    ++n;
  }
  const TrafficStats& t = protocol.traffic();
  return AblationResult{
      static_cast<double>(t.total_words()) / static_cast<double>(n),
      t.upstream_fraction(), protocol.rounds(), protocol.subrounds(),
      protocol.rebalances()};
}

AblationResult RunGm(const std::vector<StreamRecord>& trace,
                     const RunConfig& rc, const GmConfig& config) {
  auto query = MakeQuery(rc);
  GmProtocol protocol(query.get(), rc.sites, config);
  SlidingWindowStream events(&trace, rc.window_seconds);
  int64_t n = 0;
  while (const StreamRecord* rec = events.Next()) {
    protocol.ProcessRecord(*rec);
    ++n;
  }
  const TrafficStats& t = protocol.traffic();
  return AblationResult{
      static_cast<double>(t.total_words()) / static_cast<double>(n),
      t.upstream_fraction(), protocol.rounds(), protocol.violations(),
      protocol.partial_rebalances()};
}

void AddRow(TablePrinter* table, const std::string& label,
            const AblationResult& r) {
  table->AddRow({label, Fmt("%.4f", r.comm_cost),
                 Fmt("%.1f%%", 100.0 * r.upstream_fraction),
                 TablePrinter::Cell(r.rounds), TablePrinter::Cell(r.subrounds),
                 TablePrinter::Cell(r.rebalances)});
  JsonReport::Get().AddEntry(
      label, {{"comm_cost", r.comm_cost},
              {"upstream_fraction", r.upstream_fraction},
              {"rounds", static_cast<double>(r.rounds)},
              {"subrounds", static_cast<double>(r.subrounds)},
              {"rebalances", static_cast<double>(r.rebalances)}});
}

void Main() {
  JsonReport::Get().Init("ablation");
  const BenchScale scale = DefaultScale();
  const auto trace = PaperTrace(scale);
  const RunConfig typical = BaseConfig(QueryKind::kSelfJoin, kPaperSites,
                                       7000.0, 0.1, 4 * 3600.0, scale);
  std::printf("Ablations on Q1, k=27, paper D=7000, TW=4h, eps=0.1, "
              "%lld updates\n",
              static_cast<long long>(scale.updates));

  {
    PrintBanner("A1: rebalancing (§4.1)");
    TablePrinter table({"variant", "comm.cost", "upstream%", "rounds",
                        "subrounds", "rebalances"});
    FgmConfig off;
    off.rebalance = false;
    AddRow(&table, "no rebalancing (basic §2.4)", RunFgm(trace, typical, off));
    for (const double min_lambda : {0.5, 0.2, 0.05}) {
      FgmConfig on;
      on.min_lambda = min_lambda;
      AddRow(&table, "rebalance, min lambda " + Fmt("%.2f", min_lambda),
             RunFgm(trace, typical, on));
    }
    table.Print();
  }

  {
    PrintBanner("A2: psi quantization accuracy eps_psi (§2.4)");
    TablePrinter table({"eps_psi", "comm.cost", "upstream%", "rounds",
                        "subrounds", "rebalances"});
    for (const double eps_psi : {0.001, 0.01, 0.05, 0.2}) {
      FgmConfig config;
      config.eps_psi = eps_psi;
      AddRow(&table, Fmt("%.3f", eps_psi), RunFgm(trace, typical, config));
    }
    table.Print();
    std::printf("Smaller eps_psi = more subrounds per round, marginally "
                "longer rounds; the paper's 0.01 is a sweet spot.\n");
  }

  {
    PrintBanner("A3: rebalance economy rule (words/site threshold)");
    TablePrinter table({"threshold", "comm.cost", "upstream%", "rounds",
                        "subrounds", "rebalances"});
    for (const double words : {0.0, 16.0, 64.0, 1e9}) {
      FgmConfig config;
      config.rebalance_min_words_per_site = words;
      AddRow(&table, Fmt("%.0f", words), RunFgm(trace, typical, config));
    }
    table.Print();
    std::printf("1e9 disables rebalancing economically (always end the "
                "round); 0 always rebalances.\n");
  }

  {
    PrintBanner("A4: GM partial-rebalance slack margin");
    TablePrinter table({"margin", "comm.cost", "upstream%", "full syncs",
                        "violations", "partial rebalances"});
    for (const double margin : {0.0, 0.1, 0.25, 0.5}) {
      GmConfig config;
      config.slack_margin = margin;
      AddRow(&table, Fmt("%.2f", margin), RunGm(trace, typical, config));
    }
    table.Print();
  }

  {
    PrintBanner("A5: FGM/O optimizer, typical vs adverse");
    TablePrinter table({"regime / optimizer", "comm.cost", "upstream%",
                        "rounds", "subrounds", "rebalances"});
    FgmConfig plain;
    FgmConfig opt;
    opt.optimizer = true;
    AddRow(&table, "typical, FGM", RunFgm(trace, typical, plain));
    AddRow(&table, "typical, FGM/O", RunFgm(trace, typical, opt));
    const RunConfig adverse = BaseConfig(QueryKind::kSelfJoin, kPaperSites,
                                         35000.0, 0.02, 3600.0, scale);
    AddRow(&table, "adverse, FGM", RunFgm(trace, adverse, plain));
    AddRow(&table, "adverse, FGM/O", RunFgm(trace, adverse, opt));
    table.Print();
  }

  {
    PrintBanner("A6: optimizer rate prediction order (§4.2.5 extension)");
    TablePrinter table({"regime / model", "comm.cost", "upstream%", "rounds",
                        "subrounds", "rebalances"});
    FgmConfig first;
    first.optimizer = true;
    FgmConfig second = first;
    second.optimizer_second_order = true;
    AddRow(&table, "typical, first-order", RunFgm(trace, typical, first));
    AddRow(&table, "typical, second-order", RunFgm(trace, typical, second));
    const RunConfig adverse = BaseConfig(QueryKind::kSelfJoin, kPaperSites,
                                         35000.0, 0.02, 3600.0, scale);
    AddRow(&table, "adverse, first-order", RunFgm(trace, adverse, first));
    AddRow(&table, "adverse, second-order", RunFgm(trace, adverse, second));
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace fgm

int main() {
  fgm::bench::Main();
  return 0;
}
