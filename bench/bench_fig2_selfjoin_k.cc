// Figure 2: communication cost and upstream share of GM / FGM / FGM/O for
// the self-join query Q1, as a function of the number of sites k, in the
// turnstile model (TW = 4h window) and the cash-register model.
// Paper parameters: ε = 0.1, D = 7000.
//
// Expected shape (paper): FGM variants 2–3× cheaper than GM as k grows;
// GM's upstream share grows with k while FGM's falls.

#include <cstdio>

#include "bench_common.h"

namespace fgm {
namespace bench {
namespace {

void RunModel(const std::vector<StreamRecord>& trace, const BenchScale& scale,
              double window, const char* title) {
  PrintBanner(title);
  TablePrinter table(ResultColumns("k"));
  for (const int k : {2, 5, 9, 14, 20, 27}) {
    const auto partitioned =
        k == kPaperSites ? trace : RehashSites(trace, k);
    for (const ProtocolKind protocol :
         {ProtocolKind::kGm, ProtocolKind::kFgm, ProtocolKind::kFgmOpt}) {
      RunConfig config = BaseConfig(QueryKind::kSelfJoin, k,
                                    /*paper_d=*/7000.0, /*epsilon=*/0.1,
                                    window, scale);
      config.protocol = protocol;
      const RunResult r = ::fgm::Run(config, partitioned);
      table.AddRow(ResultRow(TablePrinter::Cell(static_cast<int64_t>(k)), r));
    }
  }
  table.Print();
}

void Main() {
  JsonReport::Get().Init("fig2_selfjoin_k");
  const BenchScale scale = DefaultScale();
  std::printf("Figure 2 reproduction: query Q1 (self-join), eps=0.1, "
              "paper D=7000 (scaled width=%d), %lld updates\n",
              scale.WidthForPaperD(7000.0),
              static_cast<long long>(scale.updates));
  const auto trace = PaperTrace(scale);
  RunModel(trace, scale, /*window=*/4.0 * 3600.0,
           "Fig 2 (top): Q1, turnstile model, TW = 4h");
  RunModel(trace, scale, /*window=*/0.0,
           "Fig 2 (bottom): Q1, cash-register model");
}

}  // namespace
}  // namespace bench
}  // namespace fgm

int main() {
  fgm::bench::Main();
  return 0;
}
