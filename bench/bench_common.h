// Shared infrastructure for the per-figure benchmark binaries.
//
// The paper's evaluation uses day 46 of the WorldCup'98 trace: 50.3M
// requests at 27 mirrors over 24 hours, with sketch sizes D ∈ {7000,
// 21000, 35000} and windows of 1–4 hours. A laptop reproduction cannot
// sweep dozens of 50M-update runs, so every benchmark scales the trace
// down and scales D with it, keeping the dimensionless ratio
//     stream length / (k · D)
// that governs the normalized comm.cost — the quantity all figures plot —
// comparable to the paper's. Window lengths stay in real (simulated)
// seconds, so they cover the same fraction of the day.
//
// Environment knobs:
//   FGM_BENCH_SCALE  — multiplies the trace length (default 1.0; the
//                      default trace is ~1.2M updates ≈ 1/42 of the
//                      paper's day). Larger values sharpen the numbers at
//                      proportionally larger runtime.
//   FGM_BENCH_OUT    — directory for the machine-readable BENCH_<name>.json
//                      reports (default: the working directory).

#ifndef FGM_BENCH_BENCH_COMMON_H_
#define FGM_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "driver/runner.h"
#include "obs/json.h"
#include "stream/partition.h"
#include "stream/worldcup.h"
#include "util/table.h"

namespace fgm {
namespace bench {

inline constexpr double kPaperUpdates = 50.3e6;
inline constexpr int kPaperSites = 27;
inline constexpr int kSketchDepth = 5;

struct BenchScale {
  int64_t updates;

  double sigma() const {
    return static_cast<double>(updates) / kPaperUpdates;
  }

  /// Scales a paper sketch dimension D to this run, returned as the width
  /// of a depth-kSketchDepth Fast-AGMS sketch.
  int WidthForPaperD(double paper_d) const {
    const double scaled = paper_d * sigma() / kSketchDepth;
    const int width = static_cast<int>(scaled + 0.5);
    return width < 8 ? 8 : width;
  }
};

inline BenchScale DefaultScale() {
  double multiplier = 1.0;
  if (const char* env = std::getenv("FGM_BENCH_SCALE")) {
    multiplier = std::strtod(env, nullptr);
    if (multiplier <= 0) multiplier = 1.0;
  }
  BenchScale scale;
  scale.updates = static_cast<int64_t>(1200000.0 * multiplier);
  return scale;
}

/// The day-46-like synthetic trace at 27 sites (generated once per
/// binary).
inline std::vector<StreamRecord> PaperTrace(const BenchScale& scale) {
  WorldCupConfig config;
  config.sites = kPaperSites;
  config.total_updates = scale.updates;
  config.duration = 86400.0;
  config.distinct_clients =
      static_cast<uint64_t>(40000.0 * scale.sigma() * 50.0) + 10000;
  return GenerateWorldCupTrace(config);
}

/// Base run configuration for the sketch queries.
inline RunConfig BaseConfig(QueryKind query, int sites, double paper_d,
                            double epsilon, double window_seconds,
                            const BenchScale& scale) {
  RunConfig config;
  config.query = query;
  config.sites = sites;
  config.depth = kSketchDepth;
  config.width = scale.WidthForPaperD(paper_d);
  config.epsilon = epsilon;
  config.window_seconds = window_seconds;
  // Sparse sanity checks: confirms the guarantee during benches at ~0 cost.
  config.check_every = 20000;
  return config;
}

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

/// Machine-readable figure data: each benchmark binary registers its name
/// once (Init), every run lands in the report as one JSON object, and the
/// report is written to FGM_BENCH_OUT/BENCH_<name>.json when the process
/// exits. The JSON carries the full RunResult, so figure data can be
/// regenerated without re-parsing the printed tables.
class JsonReport {
 public:
  static JsonReport& Get() {
    static JsonReport* report = new JsonReport();  // survives exit paths
    return *report;
  }

  /// Standalone instance for a binary that exports a second report next to
  /// the singleton (e.g. bench_micro's BENCH_micro.json beside
  /// BENCH_parallel_speedup.json); call Write() explicitly.
  JsonReport() = default;

  void Init(const std::string& bench_name) { name_ = bench_name; }

  /// Records one experiment run under the figure's x-axis label.
  void AddRun(const std::string& x_label, const RunResult& r) {
    JsonWriter w;
    w.BeginObject();
    w.Field("x", x_label);
    w.Field("protocol", r.protocol_name);
    w.Field("query", r.query_name);
    w.Field("events", r.events);
    w.Field("rounds", r.rounds);
    w.Field("subrounds", r.subrounds);
    w.Field("rebalances", r.rebalances);
    w.Field("total_words", r.traffic.total_words());
    w.Field("upstream_words", r.traffic.upstream_words);
    w.Field("downstream_words", r.traffic.downstream_words);
    w.Field("comm_cost", r.comm_cost);
    w.Field("upstream_fraction", r.upstream_fraction);
    w.Field("max_violation", r.max_violation);
    w.Field("wall_seconds", r.wall_seconds);
    w.EndObject();
    runs_.push_back(w.Take());
    Arm();
  }

  /// Records a standalone named value (area measurements, counters).
  void AddScalar(const std::string& name, double value) {
    scalars_.emplace_back(name, value);
    Arm();
  }

  /// Records one row of a custom table (benches that do not go through
  /// RunResult): an x-axis label plus named numeric fields.
  void AddEntry(
      const std::string& x_label,
      std::initializer_list<std::pair<const char*, double>> fields) {
    JsonWriter w;
    w.BeginObject();
    w.Field("x", x_label);
    for (const auto& field : fields) w.Field(field.first, field.second);
    w.EndObject();
    runs_.push_back(w.Take());
    Arm();
  }

  void Write() {
    if (name_.empty() || written_ || (runs_.empty() && scalars_.empty())) {
      return;
    }
    written_ = true;
    std::string dir = ".";
    if (const char* env = std::getenv("FGM_BENCH_OUT")) {
      if (env[0] != '\0') dir = env;
    }
    std::string out = "{\"bench\":" + JsonWriter::Quoted(name_) +
                      ",\"runs\":[";
    for (size_t i = 0; i < runs_.size(); ++i) {
      if (i > 0) out += ',';
      out += runs_[i];
    }
    out += "],\"scalars\":{";
    for (size_t i = 0; i < scalars_.size(); ++i) {
      if (i > 0) out += ',';
      out += JsonWriter::Quoted(scalars_[i].first) + ":" +
             JsonWriter::Number(scalars_[i].second);
    }
    out += "}}";
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fwrite(out.data(), 1, out.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("figure data: %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
    }
  }

 private:
  // Flush on normal process exit once there is something to write.
  void Arm() {
    if (!armed_) {
      armed_ = true;
      std::atexit([] { Get().Write(); });
    }
  }

  std::string name_;
  std::vector<std::string> runs_;
  std::vector<std::pair<std::string, double>> scalars_;
  bool armed_ = false;
  bool written_ = false;
};

/// Columns shared by the figure tables. Feeds the run into the JsonReport
/// as a side effect, so table-driven benches export their figure data
/// without extra calls.
inline std::vector<std::string> ResultRow(const std::string& x_label,
                                          const RunResult& r) {
  JsonReport::Get().AddRun(x_label, r);
  return {x_label,
          r.protocol_name,
          Fmt("%.4f", r.comm_cost),
          Fmt("%.1f%%", 100.0 * r.upstream_fraction),
          TablePrinter::Cell(r.rounds),
          Fmt("%.2g", r.max_violation)};
}

inline std::vector<std::string> ResultColumns(const std::string& x_name) {
  return {x_name, "protocol", "comm.cost", "upstream%", "rounds",
          "bound overshoot"};
}

}  // namespace bench
}  // namespace fgm

#endif  // FGM_BENCH_BENCH_COMMON_H_
