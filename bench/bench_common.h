// Shared infrastructure for the per-figure benchmark binaries.
//
// The paper's evaluation uses day 46 of the WorldCup'98 trace: 50.3M
// requests at 27 mirrors over 24 hours, with sketch sizes D ∈ {7000,
// 21000, 35000} and windows of 1–4 hours. A laptop reproduction cannot
// sweep dozens of 50M-update runs, so every benchmark scales the trace
// down and scales D with it, keeping the dimensionless ratio
//     stream length / (k · D)
// that governs the normalized comm.cost — the quantity all figures plot —
// comparable to the paper's. Window lengths stay in real (simulated)
// seconds, so they cover the same fraction of the day.
//
// Environment knobs:
//   FGM_BENCH_SCALE  — multiplies the trace length (default 1.0; the
//                      default trace is ~1.2M updates ≈ 1/42 of the
//                      paper's day). Larger values sharpen the numbers at
//                      proportionally larger runtime.

#ifndef FGM_BENCH_BENCH_COMMON_H_
#define FGM_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "driver/runner.h"
#include "stream/partition.h"
#include "stream/worldcup.h"
#include "util/table.h"

namespace fgm {
namespace bench {

inline constexpr double kPaperUpdates = 50.3e6;
inline constexpr int kPaperSites = 27;
inline constexpr int kSketchDepth = 5;

struct BenchScale {
  int64_t updates;

  double sigma() const {
    return static_cast<double>(updates) / kPaperUpdates;
  }

  /// Scales a paper sketch dimension D to this run, returned as the width
  /// of a depth-kSketchDepth Fast-AGMS sketch.
  int WidthForPaperD(double paper_d) const {
    const double scaled = paper_d * sigma() / kSketchDepth;
    const int width = static_cast<int>(scaled + 0.5);
    return width < 8 ? 8 : width;
  }
};

inline BenchScale DefaultScale() {
  double multiplier = 1.0;
  if (const char* env = std::getenv("FGM_BENCH_SCALE")) {
    multiplier = std::strtod(env, nullptr);
    if (multiplier <= 0) multiplier = 1.0;
  }
  BenchScale scale;
  scale.updates = static_cast<int64_t>(1200000.0 * multiplier);
  return scale;
}

/// The day-46-like synthetic trace at 27 sites (generated once per
/// binary).
inline std::vector<StreamRecord> PaperTrace(const BenchScale& scale) {
  WorldCupConfig config;
  config.sites = kPaperSites;
  config.total_updates = scale.updates;
  config.duration = 86400.0;
  config.distinct_clients =
      static_cast<uint64_t>(40000.0 * scale.sigma() * 50.0) + 10000;
  return GenerateWorldCupTrace(config);
}

/// Base run configuration for the sketch queries.
inline RunConfig BaseConfig(QueryKind query, int sites, double paper_d,
                            double epsilon, double window_seconds,
                            const BenchScale& scale) {
  RunConfig config;
  config.query = query;
  config.sites = sites;
  config.depth = kSketchDepth;
  config.width = scale.WidthForPaperD(paper_d);
  config.epsilon = epsilon;
  config.window_seconds = window_seconds;
  // Sparse sanity checks: confirms the guarantee during benches at ~0 cost.
  config.check_every = 20000;
  return config;
}

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

/// Columns shared by the figure tables.
inline std::vector<std::string> ResultRow(const std::string& x_label,
                                          const RunResult& r) {
  return {x_label,
          r.protocol_name,
          Fmt("%.4f", r.comm_cost),
          Fmt("%.1f%%", 100.0 * r.upstream_fraction),
          TablePrinter::Cell(r.rounds),
          Fmt("%.2g", r.max_violation)};
}

inline std::vector<std::string> ResultColumns(const std::string& x_name) {
  return {x_name, "protocol", "comm.cost", "upstream%", "rounds",
          "bound overshoot"};
}

}  // namespace bench
}  // namespace fgm

#endif  // FGM_BENCH_BENCH_COMMON_H_
