// Generality table: every query family in the library, run under every
// protocol on the same stream. This is the paper's §6 "implications for
// practice" claim made measurable — the protocols never change, only the
// ContinuousQuery (summary + safe-function family) plugs in:
//
//   Q1 self-join (AGMS sketch)     — paper §5
//   Q2 join (two AGMS sketches)    — paper §5
//   F2 norm (frequency vector)     — paper §3
//   variance (classic GM workload) — Sharfman'06
//   p95 quantile (rank-linear)     — canonical monitoring problem
//
// Costs are words per update (centralizing = 1.0); "overshoot" is the
// live check of the monitoring guarantee against exact ground truth.

#include <cstdio>

#include "bench_common.h"

namespace fgm {
namespace bench {
namespace {

void Main() {
  JsonReport::Get().Init("queries");
  const BenchScale scale = DefaultScale();
  const auto trace = PaperTrace(scale);
  std::printf("Query-generality table: k=27, eps=0.1 (quantile: rank "
              "eps=0.01), TW=4h, %lld updates\n",
              static_cast<long long>(scale.updates));

  struct QuerySpec {
    const char* label;
    QueryKind kind;
  };
  const QuerySpec queries[] = {
      {"Q1 self-join (sketch)", QueryKind::kSelfJoin},
      {"Q2 join (2 sketches)", QueryKind::kJoin},
      {"F2 norm (freq vector)", QueryKind::kFpNorm},
      {"variance", QueryKind::kVariance},
      {"p95 quantile", QueryKind::kQuantile},
  };

  TablePrinter table({"query", "protocol", "comm.cost", "upstream%",
                      "rounds", "bound overshoot"});
  for (const QuerySpec& q : queries) {
    for (const ProtocolKind protocol :
         {ProtocolKind::kGm, ProtocolKind::kFgm, ProtocolKind::kFgmOpt}) {
      RunConfig config = BaseConfig(q.kind, kPaperSites, 7000.0, 0.1,
                                    4.0 * 3600.0, scale);
      if (q.kind == QueryKind::kJoin) {
        config.width = scale.WidthForPaperD(3500.0);
      }
      if (q.kind == QueryKind::kFpNorm) {
        config.fp_dimension = 4096;
      }
      if (q.kind == QueryKind::kQuantile) {
        config.epsilon = 0.01;  // rank accuracy
      }
      config.protocol = protocol;
      const RunResult r = ::fgm::Run(config, trace);
      table.AddRow(ResultRow(q.label, r));
    }
  }
  table.Print();
  std::printf("The protocol code is identical in every row; only the "
              "query object differs.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fgm

int main() {
  fgm::bench::Main();
  return 0;
}
