// Figure 5: communication cost over varying sliding-window length TW
// (top row; paper D = 21000) and varying sketch size D (bottom row;
// TW = 2h), for queries Q1 and Q2, at k = 27 and ε = 0.06.
//
// Expected shape (paper): cost falls as TW widens (variability drops);
// cost grows roughly linearly in D for GM and FGM while FGM/O flattens by
// switching to cheap safe functions.

#include <cstdio>

#include "bench_common.h"

namespace fgm {
namespace bench {
namespace {

constexpr double kEps = 0.06;

// Q2 splits its state across two sketches: use half the paper D per
// sketch so the total state dimension matches.
double PaperDFor(QueryKind query, double paper_d) {
  return query == QueryKind::kJoin ? paper_d / 2 : paper_d;
}

void WindowSweep(const std::vector<StreamRecord>& trace,
                 const BenchScale& scale, QueryKind query,
                 const char* title) {
  PrintBanner(title);
  TablePrinter table(ResultColumns("TW (s)"));
  for (const double tw : {3600.0, 7200.0, 10800.0, 14400.0}) {
    for (const ProtocolKind protocol :
         {ProtocolKind::kGm, ProtocolKind::kFgm, ProtocolKind::kFgmOpt}) {
      RunConfig config = BaseConfig(query, kPaperSites,
                                    PaperDFor(query, 21000.0), kEps, tw,
                                    scale);
      config.protocol = protocol;
      const RunResult r = ::fgm::Run(config, trace);
      table.AddRow(ResultRow(Fmt("%.0f", tw), r));
    }
  }
  table.Print();
}

void SketchSweep(const std::vector<StreamRecord>& trace,
                 const BenchScale& scale, QueryKind query,
                 const char* title) {
  PrintBanner(title);
  TablePrinter table(ResultColumns("paper D"));
  for (const double paper_d : {7000.0, 21000.0, 35000.0}) {
    for (const ProtocolKind protocol :
         {ProtocolKind::kGm, ProtocolKind::kFgm, ProtocolKind::kFgmOpt}) {
      RunConfig config = BaseConfig(query, kPaperSites,
                                    PaperDFor(query, paper_d), kEps,
                                    /*window=*/7200.0, scale);
      config.protocol = protocol;
      const RunResult r = ::fgm::Run(config, trace);
      table.AddRow(ResultRow(Fmt("%.0f", paper_d), r));
    }
  }
  table.Print();
}

void Main() {
  JsonReport::Get().Init("fig5_window_sketch");
  const BenchScale scale = DefaultScale();
  std::printf("Figure 5 reproduction: k=27, eps=0.06, %lld updates\n",
              static_cast<long long>(scale.updates));
  const auto trace = PaperTrace(scale);
  WindowSweep(trace, scale, QueryKind::kSelfJoin,
              "Fig 5 (top-left): Q1 over TW, paper D=21000");
  WindowSweep(trace, scale, QueryKind::kJoin,
              "Fig 5 (top-right): Q2 over TW, paper D=21000");
  SketchSweep(trace, scale, QueryKind::kSelfJoin,
              "Fig 5 (bottom-left): Q1 over D, TW=2h");
  SketchSweep(trace, scale, QueryKind::kJoin,
              "Fig 5 (bottom-right): Q2 over D, TW=2h");
}

}  // namespace
}  // namespace bench
}  // namespace fgm

int main() {
  fgm::bench::Main();
  return 0;
}
