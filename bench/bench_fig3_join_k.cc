// Figure 3: communication cost and upstream share of GM / FGM / FGM/O for
// the join query Q2 (σ_HTML(R) ⋈_CID σ_≠HTML(R)), as a function of k, in
// the turnstile (TW = 4h) and cash-register models.
// Paper parameters: ε = 0.1, D = 7000.
//
// Q2's state is the concatenation of two sketches and its estimate is far
// more variable than Q1's (§5), so absolute costs sit above Fig 2's, with
// the same protocol ordering.

#include <cstdio>

#include "bench_common.h"

namespace fgm {
namespace bench {
namespace {

void RunModel(const std::vector<StreamRecord>& trace, const BenchScale& scale,
              double window, const char* title) {
  PrintBanner(title);
  TablePrinter table(ResultColumns("k"));
  for (const int k : {2, 5, 9, 14, 20, 27}) {
    const auto partitioned =
        k == kPaperSites ? trace : RehashSites(trace, k);
    for (const ProtocolKind protocol :
         {ProtocolKind::kGm, ProtocolKind::kFgm, ProtocolKind::kFgmOpt}) {
      // Q2 concatenates two sketches; halve the width so the total state
      // dimension D matches the paper's quoted D, as in §5.1.
      RunConfig config = BaseConfig(QueryKind::kJoin, k,
                                    /*paper_d=*/3500.0, /*epsilon=*/0.1,
                                    window, scale);
      config.protocol = protocol;
      const RunResult r = ::fgm::Run(config, partitioned);
      table.AddRow(ResultRow(TablePrinter::Cell(static_cast<int64_t>(k)), r));
    }
  }
  table.Print();
}

void Main() {
  JsonReport::Get().Init("fig3_join_k");
  const BenchScale scale = DefaultScale();
  std::printf("Figure 3 reproduction: query Q2 (join), eps=0.1, paper "
              "D=7000 (scaled width=%d per sketch), %lld updates\n",
              scale.WidthForPaperD(3500.0),
              static_cast<long long>(scale.updates));
  const auto trace = PaperTrace(scale);
  RunModel(trace, scale, /*window=*/4.0 * 3600.0,
           "Fig 3 (top): Q2, turnstile model, TW = 4h");
  RunModel(trace, scale, /*window=*/0.0,
           "Fig 3 (bottom): Q2, cash-register model");
}

}  // namespace
}  // namespace bench
}  // namespace fgm

int main() {
  fgm::bench::Main();
  return 0;
}
