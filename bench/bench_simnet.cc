// Simulated-network sweep: FGM over the discrete-event network (src/sim)
// across a latency × drop grid plus a crash/rejoin plan.
//
// Every field exported here is deterministic — the simulator is seeded
// and the protocol is single-threaded — so BENCH_simnet.json diffs
// bit-exactly against bench/baselines/BENCH_simnet.json at --tol=0
// (bench_gate); any divergence is a behaviour change in the simulator or
// the protocol hardening, not noise. Wall-clock times are deliberately
// not exported.
//
// The headline numbers: total words (the honest cost including
// retransmissions and resyncs), rounds/subrounds (protocol progress
// under chaos), and the delivery/drop/retransmit/resync ledger. The
// max_violation column must read 0 in every row — loss, delay and
// crashes may cost traffic, never correctness.
//
// A second sweep pits FGM/O's rate-only planner against health-aware
// planning (--health_plan: the obs/health.h monitor's EWMA rates and
// per-link shipping costs feed the optimizer) on the lossy and faulted
// points. The fgmo+health rows must ship fewer total words than their
// fgmo twins — that delta is the PR-gated payoff of the health loop.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "driver/runner.h"
#include "sim/net_config.h"
#include "stream/worldcup.h"
#include "util/table.h"

namespace fgm {
namespace {

struct SweepPoint {
  const char* label;
  const char* latency;
  double drop;
  const char* fault_plan;
};

void RunSweep() {
  bench::JsonReport::Get().Init("simnet");

  const SweepPoint points[] = {
      {"sync", "", 0.0, ""},  // synchronous reference (strict wire)
      {"null", "0", 0.0, ""},
      {"fixed4", "fixed:4", 0.0, ""},
      {"fixed4,drop10", "fixed:4", 0.1, ""},
      {"uniform1-16,drop10", "uniform:1-16", 0.1, ""},
      {"uniform1-16,drop30", "uniform:1-16", 0.3, ""},
      {"exp8,drop10", "exp:8", 0.1, ""},
      {"exp8,drop30", "exp:8", 0.3, ""},
      {"uniform1-16,drop20,crash", "uniform:1-16", 0.2,
       "crash:site=2,at=20000,rejoin=26000"},
      {"uniform1-16,drop20,deadline", "uniform:1-16", 0.2,
       "crash:site=2,at=20000,rejoin=40000"},
  };

  WorldCupConfig wc;
  wc.sites = 5;
  wc.total_updates = 30000;
  const std::vector<StreamRecord> trace = GenerateWorldCupTrace(wc);

  TablePrinter table({"point", "words", "rounds", "subrounds", "delivered",
               "dropped", "retrans", "resyncs", "viol"});
  for (const SweepPoint& p : points) {
    RunConfig config;
    config.protocol = ProtocolKind::kFgm;
    config.query = QueryKind::kSelfJoin;
    config.sites = 5;
    config.depth = 5;
    config.width = 60;
    config.check_every = 1000;
    config.strict_wire = true;  // the sync reference also serializes
    config.net.latency = p.latency;
    config.net.drop = p.drop;
    config.net.fault_plan = p.fault_plan;
    const RunResult r = Run(config, trace);

    if (r.max_violation != 0.0) {
      std::fprintf(stderr, "simnet point %s missed a threshold bound\n",
                   p.label);
      std::exit(1);
    }
    table.AddRow({p.label, std::to_string(r.traffic.total_words()),
                  std::to_string(r.rounds), std::to_string(r.subrounds),
                  std::to_string(r.net.delivered_msgs),
                  std::to_string(r.net.dropped_msgs),
                  std::to_string(r.net.retransmitted_msgs),
                  std::to_string(r.net.resyncs),
                  bench::Fmt("%.3g", r.max_violation)});
    bench::JsonReport::Get().AddEntry(
        p.label,
        {{"total_words", static_cast<double>(r.traffic.total_words())},
         {"upstream_words", static_cast<double>(r.traffic.upstream_words)},
         {"rounds", static_cast<double>(r.rounds)},
         {"subrounds", static_cast<double>(r.subrounds)},
         {"rebalances", static_cast<double>(r.rebalances)},
         {"delivered_msgs", static_cast<double>(r.net.delivered_msgs)},
         {"delivered_words", static_cast<double>(r.net.delivered_words)},
         {"dropped_msgs", static_cast<double>(r.net.dropped_msgs)},
         {"dropped_words", static_cast<double>(r.net.dropped_words)},
         {"retransmitted_words",
          static_cast<double>(r.net.retransmitted_words)},
         {"stale_msgs", static_cast<double>(r.net.stale_msgs)},
         {"timeouts", static_cast<double>(r.net.timeouts)},
         {"resyncs", static_cast<double>(r.net.resyncs)},
         {"site_downs", static_cast<double>(r.net.site_downs)},
         {"max_in_flight_words",
          static_cast<double>(r.net.max_in_flight_words)},
         {"final_tick", static_cast<double>(r.net.final_tick)},
         {"max_violation", r.max_violation}});
  }
  std::printf("\nsimulated-network sweep (Q1 self-join, 30k updates, "
              "5 sites):\n");
  table.Print();

  // FGM/O under chaos: rate-only vs health-aware planning on the lossy
  // and faulted grid points. Same stream, same seeds — the only degree
  // of freedom is the plan source.
  struct OptPoint {
    const char* label;
    const char* latency;
    double drop;
    const char* fault_plan;
    bool health;
  };
  const OptPoint opt_points[] = {
      {"fgmo,fixed4,drop10", "fixed:4", 0.1, "", false},
      {"fgmo+health,fixed4,drop10", "fixed:4", 0.1, "", true},
      {"fgmo,fixed4,drop10,crash", "fixed:4", 0.1,
       "crash:site=2,at=10000,rejoin=16000", false},
      {"fgmo+health,fixed4,drop10,crash", "fixed:4", 0.1,
       "crash:site=2,at=10000,rejoin=16000", true},
      {"fgmo,uniform1-16,drop20,crash", "uniform:1-16", 0.2,
       "crash:site=2,at=20000,rejoin=26000", false},
      {"fgmo+health,uniform1-16,drop20,crash", "uniform:1-16", 0.2,
       "crash:site=2,at=20000,rejoin=26000", true},
  };
  TablePrinter opt_table({"point", "words", "rounds", "subrounds",
                          "delivered", "dropped", "retrans", "resyncs",
                          "viol"});
  for (const OptPoint& p : opt_points) {
    RunConfig config;
    config.protocol = ProtocolKind::kFgmOpt;
    config.query = QueryKind::kSelfJoin;
    config.sites = 5;
    config.depth = 5;
    config.width = 60;
    config.check_every = 1000;
    config.strict_wire = true;
    config.net.latency = p.latency;
    config.net.drop = p.drop;
    config.net.fault_plan = p.fault_plan;
    config.health_planning = p.health;
    const RunResult r = Run(config, trace);

    if (r.max_violation != 0.0) {
      std::fprintf(stderr, "simnet point %s missed a threshold bound\n",
                   p.label);
      std::exit(1);
    }
    opt_table.AddRow({p.label, std::to_string(r.traffic.total_words()),
                      std::to_string(r.rounds), std::to_string(r.subrounds),
                      std::to_string(r.net.delivered_msgs),
                      std::to_string(r.net.dropped_msgs),
                      std::to_string(r.net.retransmitted_msgs),
                      std::to_string(r.net.resyncs),
                      bench::Fmt("%.3g", r.max_violation)});
    bench::JsonReport::Get().AddEntry(
        p.label,
        {{"total_words", static_cast<double>(r.traffic.total_words())},
         {"upstream_words", static_cast<double>(r.traffic.upstream_words)},
         {"rounds", static_cast<double>(r.rounds)},
         {"subrounds", static_cast<double>(r.subrounds)},
         {"rebalances", static_cast<double>(r.rebalances)},
         {"delivered_msgs", static_cast<double>(r.net.delivered_msgs)},
         {"dropped_msgs", static_cast<double>(r.net.dropped_msgs)},
         {"retransmitted_words",
          static_cast<double>(r.net.retransmitted_words)},
         {"resyncs", static_cast<double>(r.net.resyncs)},
         {"alerts_raised", static_cast<double>(r.alerts_raised)},
         {"alerts_cleared", static_cast<double>(r.alerts_cleared)},
         {"max_violation", r.max_violation}});
  }
  std::printf("\nFGM/O rate-only vs health-aware planning under chaos:\n");
  opt_table.Print();
}

}  // namespace
}  // namespace fgm

int main() {
  fgm::RunSweep();
  fgm::bench::JsonReport::Get().Write();
  return 0;
}
