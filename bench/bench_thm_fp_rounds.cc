// Theorems 3.2 / 3.3: round complexity of FGM for F_p-moment monitoring
// of monotone (insert-only) streams, with safe function ‖x+E‖_p - T.
//
//  * One-shot (Thm 3.2): monitoring ‖S‖_p ≤ T from E = 0 raises the alarm
//    after O(k^{p-1} · log(1/ε)) rounds.
//  * Continuous (Thm 3.3): tracking ‖S‖_p within (1±ε) as the query value
//    grows from Q_0 to Q_n takes O(k^{p-1}/ε · log(Q_n/Q_0)) rounds.
//
// The tables report measured rounds next to the theorem's bound
// expression; the ratio must stay bounded by a small constant across the
// k and ε sweeps for the asymptotics to hold.

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/fgm_protocol.h"
#include "query/oneshot.h"
#include "query/query.h"
#include "util/rng.h"
#include "util/table.h"

namespace fgm {
namespace bench {
namespace {

constexpr size_t kDim = 64;

StreamRecord RandomRecord(int k, Xoshiro256ss& rng) {
  StreamRecord rec;
  rec.site = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(k)));
  rec.cid = rng.NextBounded(1 << 20);
  rec.weight = 1.0;
  return rec;
}

// Adversarial-for-Lemma-3.1 stream: each site updates a disjoint slice of
// the frequency vector, so the local drifts are mutually orthogonal. With
// an IID shared stream the drifts are nearly parallel and a single round
// reaches the threshold; orthogonality is what makes the k^{p-1} factor
// of Thm 3.2 bind.
StreamRecord OrthogonalRecord(int k, Xoshiro256ss& rng) {
  StreamRecord rec;
  rec.site = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(k)));
  const uint64_t slice = kDim / static_cast<uint64_t>(k);
  rec.cid = static_cast<uint64_t>(rec.site) * slice + rng.NextBounded(slice);
  rec.weight = 1.0;
  return rec;
}

void OneShot() {
  PrintBanner("Theorem 3.2: one-shot F_p monitoring rounds");
  TablePrinter table({"p", "k", "eps", "rounds", "k^{p-1}*log2(1/eps)",
                      "ratio"});
  for (const double p : {1.0, 2.0}) {
    for (const int k : {2, 4, 8, 16}) {
      for (const double eps : {0.1, 0.05, 0.02}) {
        Xoshiro256ss rng(77);
        // Threshold: the (average) state reaches it well within the run.
        const double threshold = p == 1.0 ? 20000.0 : 2500.0;
        OneShotFpQuery query(kDim, p, threshold, eps);
        FgmConfig config;
        config.rebalance = false;  // §3 analyzes the basic protocol
        FgmProtocol protocol(&query, k, config);
        int64_t updates = 0;
        while (!query.AlarmRaised(protocol.Estimate()) &&
               updates < 100000000) {
          protocol.ProcessRecord(OrthogonalRecord(k, rng));
          ++updates;
        }
        const double bound =
            std::pow(static_cast<double>(k), p - 1.0) * std::log2(1.0 / eps);
        table.AddRow({Fmt("%.0f", p), TablePrinter::Cell(int64_t{k}),
                      Fmt("%.2f", eps), TablePrinter::Cell(protocol.rounds()),
                      Fmt("%.1f", bound),
                      Fmt("%.2f", static_cast<double>(protocol.rounds()) /
                                      bound)});
        JsonReport::Get().AddEntry(
            "oneshot/p" + Fmt("%.0f", p) + "/k" +
                Fmt("%.0f", static_cast<double>(k)) + "/eps" +
                Fmt("%.2f", eps),
            {{"rounds", static_cast<double>(protocol.rounds())},
             {"bound", bound},
             {"ratio", static_cast<double>(protocol.rounds()) / bound}});
      }
    }
  }
  table.Print();
  std::printf("Thm 3.2 holds if the ratio stays bounded by a constant "
              "across k and eps.\n");
}

void Continuous() {
  PrintBanner("Theorem 3.3: continuous F_p monitoring rounds");
  TablePrinter table({"p", "k", "eps", "rounds", "Q0 -> Qn",
                      "k^{p-1}/eps*ln(Qn/Q0)", "ratio"});
  for (const double p : {1.0, 2.0}) {
    for (const int k : {2, 4, 8}) {
      for (const double eps : {0.1, 0.05}) {
        Xoshiro256ss rng(99);
        FpNormQuery query(kDim, p, eps, FpNormQuery::Mode::kMonotoneUpper,
                          /*threshold_floor=*/1.0);
        FgmConfig config;
        config.rebalance = false;
        FgmProtocol protocol(&query, k, config);
        // Warm up until the estimate is meaningful, then count rounds.
        const double q_start = p == 1.0 ? 500.0 : 60.0;
        int64_t start_rounds = -1;
        double q0 = 0.0;
        const int64_t total_updates = 400000;
        for (int64_t n = 0; n < total_updates; ++n) {
          protocol.ProcessRecord(RandomRecord(k, rng));
          if (start_rounds < 0 && protocol.Estimate() >= q_start) {
            start_rounds = protocol.rounds();
            q0 = protocol.Estimate();
          }
        }
        const double qn = protocol.Estimate();
        const int64_t rounds = protocol.rounds() - start_rounds;
        const double bound = std::pow(static_cast<double>(k), p - 1.0) /
                             eps * std::log(qn / q0);
        table.AddRow(
            {Fmt("%.0f", p), TablePrinter::Cell(int64_t{k}),
             Fmt("%.2f", eps), TablePrinter::Cell(rounds),
             Fmt("%.3g", q0) + " -> " + Fmt("%.3g", qn),
             Fmt("%.1f", bound),
             Fmt("%.3f", static_cast<double>(rounds) / bound)});
        JsonReport::Get().AddEntry(
            "continuous/p" + Fmt("%.0f", p) + "/k" +
                Fmt("%.0f", static_cast<double>(k)) + "/eps" +
                Fmt("%.2f", eps),
            {{"rounds", static_cast<double>(rounds)},
             {"q0", q0},
             {"qn", qn},
             {"bound", bound},
             {"ratio", static_cast<double>(rounds) / bound}});
      }
    }
  }
  table.Print();
  std::printf("Thm 3.3 holds if the ratio stays bounded by a constant.\n");
}

void Main() {
  JsonReport::Get().Init("thm_fp_rounds");
  std::printf("Theorems 3.2/3.3 reproduction: F_p moments of monotone "
              "streams, dimension %zu\n", kDim);
  OneShot();
  Continuous();
}

}  // namespace
}  // namespace bench
}  // namespace fgm

int main() {
  fgm::bench::Main();
  return 0;
}
