// §2.5.1 observation: the number of subrounds per round was "always at
// most 10, and almost always 7 ≈ log2(1/0.01)" in the paper's
// experiments, and the per-round subround traffic O(kq) is dominated by
// the Θ(kD) upstream cost by orders of magnitude.
//
// This bench reproduces both observations: the subround histogram across
// typical and adverse workloads, and the share of total traffic spent on
// subround machinery (quanta, counters, φ-value polls).

#include <cstdio>

#include "bench_common.h"
#include "core/fgm_protocol.h"
#include "stream/window.h"

namespace fgm {
namespace bench {
namespace {

void RunCase(const std::vector<StreamRecord>& trace, const BenchScale& scale,
             QueryKind query, double paper_d, double eps, double window,
             const char* label, TablePrinter* table) {
  RunConfig rc = BaseConfig(query, kPaperSites, paper_d, eps, window, scale);
  auto q = MakeQuery(rc);
  FgmConfig config;
  FgmProtocol protocol(q.get(), kPaperSites, config);
  SlidingWindowStream events(&trace, window);
  while (const StreamRecord* rec = events.Next()) {
    protocol.ProcessRecord(*rec);
  }
  const CountHistogram& h = protocol.subrounds_per_round();
  const TrafficStats& t = protocol.traffic();
  const int64_t subround_words = protocol.SubroundWords();
  const int64_t zone_words =
      t.words_by_kind[static_cast<size_t>(MsgKind::kSafeZone)];
  // Theorem 2.7: subround words ≤ (9k+3)·V.
  const double thm27_bound =
      (9.0 * kPaperSites + 3.0) * protocol.psi_variability();
  table->AddRow({label, TablePrinter::Cell(protocol.rounds()),
                 Fmt("%.2f", h.Mean()), TablePrinter::Cell(h.Quantile(0.5)),
                 TablePrinter::Cell(h.Quantile(0.9)),
                 TablePrinter::Cell(h.max_observed()),
                 Fmt("%.1f%%", 100.0 * static_cast<double>(subround_words) /
                                   static_cast<double>(t.total_words())),
                 Fmt("%.1f%%", 100.0 * static_cast<double>(zone_words) /
                                   static_cast<double>(t.total_words())),
                 Fmt("%.2f", static_cast<double>(subround_words) /
                                 thm27_bound)});
  JsonReport::Get().AddEntry(
      label,
      {{"rounds", static_cast<double>(protocol.rounds())},
       {"mean_subrounds", h.Mean()},
       {"p50_subrounds", static_cast<double>(h.Quantile(0.5))},
       {"p90_subrounds", static_cast<double>(h.Quantile(0.9))},
       {"max_subrounds", static_cast<double>(h.max_observed())},
       {"subround_word_share", static_cast<double>(subround_words) /
                                   static_cast<double>(t.total_words())},
       {"safezone_word_share", static_cast<double>(zone_words) /
                                   static_cast<double>(t.total_words())},
       {"thm27_ratio",
        static_cast<double>(subround_words) / thm27_bound}});
}

void Main() {
  JsonReport::Get().Init("subrounds");
  const BenchScale scale = DefaultScale();
  std::printf("§2.5.1 reproduction: subrounds per round (eps_psi = 0.01, "
              "log2(1/eps_psi) ≈ 6.6), %lld updates\n",
              static_cast<long long>(scale.updates));
  const auto trace = PaperTrace(scale);
  TablePrinter table({"workload", "rounds", "mean subrounds", "p50", "p90",
                      "max", "subround words", "safe-zone words",
                      "cost/Thm2.7 bound"});
  RunCase(trace, scale, QueryKind::kSelfJoin, 7000.0, 0.10, 4 * 3600.0,
          "Q1 typical (D=7000, eps=0.1, TW=4h)", &table);
  RunCase(trace, scale, QueryKind::kSelfJoin, 35000.0, 0.02, 3600.0,
          "Q1 adverse (D=35000, eps=0.02, TW=1h)", &table);
  RunCase(trace, scale, QueryKind::kJoin, 3500.0, 0.10, 4 * 3600.0,
          "Q2 typical (D=7000, eps=0.1, TW=4h)", &table);
  RunCase(trace, scale, QueryKind::kJoin, 17500.0, 0.02, 3600.0,
          "Q2 adverse (D=35000, eps=0.02, TW=1h)", &table);
  table.Print();
  std::printf("Paper: subrounds/round at most ~10, usually ~7; subround "
              "traffic dominated by safe-zone (Θ(kD)) shipping.\n"
              "Thm 2.7 holds when the last column is ≤ 1.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fgm

int main() {
  fgm::bench::Main();
  return 0;
}
