// Figure 4: communication cost under a difficult workload — large state
// vectors (paper D = 35000), a short 1-hour window (high variability) and
// tight accuracies ε ∈ [0.02, 0.1], at k = 27.
//
// Expected shape (paper): every protocol except FGM/O costs several times
// the size of the streamed data (rounds are too short to amortize safe
// zones); FGM/O keeps the total cost low by declining to ship safe zones
// in most rounds.
//
// The "+health" rows run FGM/O with health-aware planning (obs/health.h:
// the optimizer plans from the monitor's EWMA-smoothed per-site rates
// instead of the raw previous round). Under this workload's high
// variability the smoothing stops one-round spikes from flipping plans,
// and the rows must come in below their rate-only twins.

#include <cstdio>

#include "bench_common.h"

namespace fgm {
namespace bench {
namespace {

void RunQuery(const std::vector<StreamRecord>& trace, const BenchScale& scale,
              QueryKind query, double paper_d, const char* title) {
  PrintBanner(title);
  TablePrinter table(ResultColumns("eps"));
  for (const double eps : {0.02, 0.04, 0.06, 0.08, 0.10}) {
    for (const ProtocolKind protocol :
         {ProtocolKind::kGm, ProtocolKind::kFgm, ProtocolKind::kFgmOpt}) {
      RunConfig config = BaseConfig(query, kPaperSites, paper_d, eps,
                                    /*window=*/3600.0, scale);
      config.protocol = protocol;
      const RunResult r = ::fgm::Run(config, trace);
      table.AddRow(ResultRow(Fmt("%.2f", eps), r));
    }
    // FGM/O again with the health monitor driving plan selection.
    RunConfig config = BaseConfig(query, kPaperSites, paper_d, eps,
                                  /*window=*/3600.0, scale);
    config.protocol = ProtocolKind::kFgmOpt;
    config.health_planning = true;
    const RunResult r = ::fgm::Run(config, trace);
    table.AddRow(ResultRow(Fmt("%.2f", eps) + "+health", r));
  }
  table.Print();
}

void Main() {
  JsonReport::Get().Init("fig4_adverse");
  const BenchScale scale = DefaultScale();
  std::printf("Figure 4 reproduction: adverse workload, k=27, paper "
              "D=35000 (scaled width=%d), TW=1h, %lld updates\n",
              scale.WidthForPaperD(35000.0),
              static_cast<long long>(scale.updates));
  const auto trace = PaperTrace(scale);
  RunQuery(trace, scale, QueryKind::kSelfJoin, 35000.0,
           "Fig 4 (left): Q1 (self-join) under adverse conditions");
  RunQuery(trace, scale, QueryKind::kJoin, 17500.0,
           "Fig 4 (right): Q2 (join) under adverse conditions");
}

}  // namespace
}  // namespace bench
}  // namespace fgm

int main() {
  fgm::bench::Main();
  return 0;
}
