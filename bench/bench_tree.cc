// Hierarchical-topology sweep: flat star vs two-tier tree (src/hier) on
// the same deterministic stream, scaling k from 32 to 10^4 sites.
//
// The flat FGM coordinator touches all k sites every subround, so its
// root traffic grows linearly in k even when the data distribution is
// unchanged. The tree arranges the k leaves under ~sqrt(k) aggregators
// (fanout f with f*f >= k), each running the counter/quantized-export
// machinery over its children and acting as a single site to the root;
// the root then sees only f endpoints. The headline column is root_words
// — the traffic crossing the coordinator's own links — which must drop
// sub-linearly once aggregation has enough leaves to amortize (gated
// below at k >= 1024). total_words includes every tier's links and is
// expected to stay within a small factor of flat: the tree does not
// reduce total work, it moves it off the root hot-spot.
//
// Every exported field is deterministic (seeded stream, serial
// protocol), so BENCH_tree.json diffs bit-exactly against
// bench/baselines/BENCH_tree.json at --tol=0. The viol column must read
// 0 in every row — topology may cost traffic, never correctness.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "driver/runner.h"
#include "stream/worldcup.h"
#include "util/table.h"

namespace fgm {
namespace {

struct SweepPoint {
  int sites;
  const char* topology;  // two-tier spec with fanout ~ sqrt(sites)
  int64_t updates;
};

RunConfig BaseConfig(const SweepPoint& p) {
  RunConfig config;
  config.protocol = ProtocolKind::kFgm;
  config.query = QueryKind::kSelfJoin;
  config.sites = p.sites;
  config.depth = 3;
  config.width = 16;
  config.epsilon = 0.1;
  config.check_every = 5000;
  return config;
}

void RunSweep() {
  bench::JsonReport::Get().Init("tree");

  // Fanouts chosen so fanout^2 covers the leaves in exactly two tiers.
  // The update budget grows with k so the larger trees still see a few
  // updates per leaf.
  const SweepPoint points[] = {
      {32, "tree:6", 100000},
      {128, "tree:12", 100000},
      {1024, "tree:32", 200000},
      {10000, "tree:100", 400000},
  };

  TablePrinter table({"k", "topology", "flat_words", "root_words",
                      "root/flat", "tree_total", "rounds_flat", "rounds_tree",
                      "local_polls", "viol"});
  for (const SweepPoint& p : points) {
    WorldCupConfig wc;
    wc.sites = p.sites;
    wc.total_updates = p.updates;
    const std::vector<StreamRecord> trace = GenerateWorldCupTrace(wc);

    RunConfig flat_config = BaseConfig(p);
    const RunResult flat = Run(flat_config, trace);

    RunConfig tree_config = BaseConfig(p);
    tree_config.topology = p.topology;
    const RunResult tree = Run(tree_config, trace);

    // Self-gating: neither run may ever miss the eps guarantee.
    if (flat.max_violation != 0.0 || tree.max_violation != 0.0) {
      std::fprintf(stderr, "tree sweep k=%d missed a threshold bound\n",
                   p.sites);
      std::exit(1);
    }

    // On tree runs RunResult.traffic covers the root tier only;
    // tier_traffic lists every link tier root-side first (entry 0
    // repeats the root totals).
    const int64_t flat_words = flat.traffic.total_words();
    const int64_t root_words = tree.traffic.total_words();
    int64_t tree_total = 0;
    for (const TrafficStats& t : tree.tier_traffic) {
      tree_total += t.total_words();
    }

    // The payoff this benchmark exists to defend: with enough leaves the
    // root's traffic must be strictly sub-linear vs the flat star.
    if (p.sites >= 1024 && root_words >= flat_words) {
      std::fprintf(stderr,
                   "tree sweep k=%d: root words %lld not below flat %lld\n",
                   p.sites, static_cast<long long>(root_words),
                   static_cast<long long>(flat_words));
      std::exit(1);
    }

    table.AddRow({std::to_string(p.sites), p.topology,
                  std::to_string(flat_words), std::to_string(root_words),
                  bench::Fmt("%.3f", static_cast<double>(root_words) /
                                         static_cast<double>(flat_words)),
                  std::to_string(tree_total), std::to_string(flat.rounds),
                  std::to_string(tree.rounds),
                  std::to_string(tree.local_polls),
                  bench::Fmt("%.3g", tree.max_violation)});
    bench::JsonReport::Get().AddEntry(
        "k" + std::to_string(p.sites),
        {{"flat_words", static_cast<double>(flat_words)},
         {"flat_up_words", static_cast<double>(flat.traffic.upstream_words)},
         {"root_words", static_cast<double>(root_words)},
         {"root_up_words", static_cast<double>(tree.traffic.upstream_words)},
         {"tree_total_words", static_cast<double>(tree_total)},
         {"root_over_flat", static_cast<double>(root_words) /
                                static_cast<double>(flat_words)},
         {"rounds_flat", static_cast<double>(flat.rounds)},
         {"rounds_tree", static_cast<double>(tree.rounds)},
         {"subrounds_flat", static_cast<double>(flat.subrounds)},
         {"subrounds_tree", static_cast<double>(tree.subrounds)},
         {"local_polls", static_cast<double>(tree.local_polls)},
         {"max_violation", tree.max_violation}});
  }
  std::printf("\nflat star vs two-tier tree (Q1 self-join, eps=0.1):\n");
  table.Print();
}

}  // namespace
}  // namespace fgm

int main() {
  fgm::RunSweep();
  fgm::bench::JsonReport::Get().Write();
  return 0;
}
